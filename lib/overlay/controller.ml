module Graph = Graph_core.Graph
module Prng = Graph_core.Prng
module Verify = Lhg_core.Verify
module Reg = Obs.Registry

type request = Join | Leave | Resize of int

let request_to_string = function
  | Join -> "join"
  | Leave -> "leave"
  | Resize n -> Printf.sprintf "resize %d" n

type chaos = {
  adversary : Chaos.Gen.adversary;
  plans_per_level : int;
  max_faults : int option;
  chaos_seed : int;
}

let chaos ?(plans_per_level = 2) ?max_faults ?(seed = 1) adversary =
  { adversary; plans_per_level; max_faults; chaos_seed = seed }

type verify_mode = Cached | Full

type strategy = Repair | Rebuild

let strategy_name = function Repair -> "repair" | Rebuild -> "rebuild"

type verification = {
  mode : [ `Cached | `Fallback | `Full ];
  verified : bool;
  reused : int;
  revalidated : int;
  recomputed : int;
}

type rejection = { at : int; request : request; error : Error.t }

type epoch = {
  index : int;
  n_before : int;
  n_after : int;
  applied : int;
  rejections : rejection list;
  strategy : strategy;
  cost_repair : int option;
  cost_rebuild : int option;
  diff : Diff.t;
  verification : verification;
  audit : Chaos.Audit.t option;
}

type t = {
  family : Membership.family;
  k : int;
  n0 : int;
  obs : Reg.t;
  pool : Par.Pool.t option;
  verify_mode : verify_mode;
  chaos_cfg : chaos option;
  engine : Incremental.t option;
  mutable synced : bool;  (** engine graph = authoritative graph *)
  mutable graph : Graph.t;
  base : Graph.t;  (** epoch-0 graph, frozen, for diff replay *)
  mutable n : int;
  mutable epochs : int;
  mutable rewired : int;  (** cumulative diff cost, for the gauge *)
  mutable queue : request list;  (** newest first *)
  cache : Cert.t;
  (* metric handles, nil-safe *)
  m_epochs : Reg.counter;
  m_applied : Reg.counter;
  m_rejected : Reg.counter;
  m_reused : Reg.counter;
  m_revalidated : Reg.counter;
  m_recomputed : Reg.counter;
  m_cached : Reg.counter;
  m_full : Reg.counter;
  h_cost : Reg.histogram;
  h_ms : Reg.histogram;
}

let floor_of ~family ~k =
  match family with Membership.Harary_classic -> k + 1 | _ -> 2 * k

let epoch_verified e = e.verification.verified

let epoch_ok e =
  epoch_verified e
  && match e.audit with None -> true | Some a -> a.Chaos.Audit.boundary_ok

let create ?(obs = Reg.nil) ?pool ?(verify = Cached) ?chaos ~family ~k ~n () =
  let floor = floor_of ~family ~k in
  if n < floor then
    Error
      (Error.No_topology
         {
           family = Membership.family_name family;
           n;
           k;
           reason = Printf.sprintf "controller needs n >= %d" floor;
         })
  else
    let engine =
      (* the in-place repair engine speaks the kdiamond construction;
         everything else reconfigures by canonical rebuild only *)
      match family with
      | Membership.Kdiamond when k >= 3 ->
          let e = Incremental.start ~k () in
          ignore (Incremental.joins e ~count:(n - (2 * k)));
          Some e
      | _ -> None
    in
    let initial =
      match engine with
      | Some e -> Ok (Graph.copy (Incremental.graph e))
      | None -> (
          match Membership.create ~family ~k ~n with
          | Ok m -> Ok (Graph.copy (Membership.graph m))
          | Error e -> Error e)
    in
    match initial with
    | Error e -> Error e
    | Ok graph ->
        let cache = Cert.create ~k in
        if verify = Cached then ignore (Cert.rebuild cache ~graph);
        Ok
          {
            family;
            k;
            n0 = n;
            obs;
            pool;
            verify_mode = verify;
            chaos_cfg = chaos;
            engine;
            synced = engine <> None;
            graph;
            base = Graph.copy graph;
            n;
            epochs = 0;
            rewired = 0;
            queue = [];
            cache;
            m_epochs = Reg.counter obs "ctrl.epochs";
            m_applied = Reg.counter obs "ctrl.applied";
            m_rejected = Reg.counter obs "ctrl.rejected";
            m_reused = Reg.counter obs "ctrl.cert.reused";
            m_revalidated = Reg.counter obs "ctrl.cert.revalidated";
            m_recomputed = Reg.counter obs "ctrl.cert.recomputed";
            m_cached = Reg.counter obs "ctrl.verify.cached";
            m_full = Reg.counter obs "ctrl.verify.full";
            h_cost = Reg.histogram obs "ctrl.epoch_cost" ~bounds:Reg.hop_bounds;
            h_ms = Reg.histogram obs "ctrl.epoch_ms" ~bounds:Reg.time_bounds;
          }

let graph t = t.graph
let base_graph t = t.base
let n t = t.n
let k t = t.k
let family t = t.family
let epoch_count t = t.epochs
let feed t r = t.queue <- r :: t.queue
let pending t = List.length t.queue

(* Validation pass: walk the batch against a simulated size, splitting
   it into the accepted requests (with the size they lead to) and the
   rejected ones. Both strategies then apply exactly the accepted
   list, so they are always comparable. *)
let validate t reqs =
  let floor = floor_of ~family:t.family ~k:t.k in
  let fam = Membership.family_name t.family in
  let sim = ref t.n in
  let accepted = ref [] and rejected = ref [] in
  List.iteri
    (fun i r ->
      let target =
        match r with Join -> Some (!sim + 1) | Leave -> Some (!sim - 1) | Resize m -> Some m
      in
      match target with
      | Some m when m >= floor ->
          sim := m;
          accepted := r :: !accepted
      | Some m ->
          rejected :=
            { at = i; request = r; error = Error.Below_floor { family = fam; target = m; floor } }
            :: !rejected
      | None -> ())
    reqs;
  (List.rev !accepted, List.rev !rejected, !sim)

(* Trial-apply the accepted batch on the repair engine. Every op is
   deterministic and exactly invertible (leave undoes the newest join
   in place, and a re-join after a leave deterministically reproduces
   it), so the returned op log — newest first — rolls the engine back
   exactly when the rebuild candidate wins. *)
let trial_apply engine reqs =
  let ops = ref [] in
  let join () =
    ignore (Incremental.join engine);
    ops := `J :: !ops
  in
  let leave () =
    (match Incremental.leave engine with Ok _ -> () | Error _ -> assert false);
    ops := `L :: !ops
  in
  List.iter
    (fun r ->
      match r with
      | Join -> join ()
      | Leave -> leave ()
      | Resize m ->
          while Incremental.n engine < m do
            join ()
          done;
          while Incremental.n engine > m do
            leave ()
          done)
    reqs;
  !ops

let rollback engine ops =
  List.iter
    (function
      | `J -> ( match Incremental.leave engine with Ok _ -> () | Error _ -> assert false)
      | `L -> ignore (Incremental.join engine))
    ops

let run_audit t ~index =
  match t.chaos_cfg with
  | None -> None
  | Some c ->
      let rng = Prng.create ~seed:(c.chaos_seed + (8191 * index)) in
      let max_faults = Option.value c.max_faults ~default:t.k in
      let plans =
        Chaos.Gen.sweep ~plans_per_level:c.plans_per_level ~rng ~graph:t.graph ~source:0
          ~max_faults c.adversary
      in
      let env =
        Flood.Env.default
        |> Flood.Env.with_seed (c.chaos_seed + (127 * index))
        |> Flood.Env.with_pool t.pool
      in
      Some (Chaos.Audit.run ~env ~graph:t.graph ~k:t.k ~source:0 ~plans)

let verify_epoch t ~diff =
  let full_verdict () = Verify.quick ?pool:t.pool t.graph ~k:t.k in
  match t.verify_mode with
  | Full ->
      Reg.incr t.m_full;
      { mode = `Full; verified = full_verdict (); reused = 0; revalidated = 0; recomputed = 0 }
  | Cached ->
      if Cert.armed t.cache then begin
        let r = Cert.check t.cache ~graph:t.graph ~removed:diff.Diff.removed in
        Reg.add t.m_reused r.Cert.reused;
        Reg.add t.m_revalidated r.Cert.revalidated;
        Reg.add t.m_recomputed r.Cert.recomputed;
        if Cert.ok r then begin
          Reg.incr t.m_cached;
          {
            mode = `Cached;
            verified = true;
            reused = r.Cert.reused;
            revalidated = r.Cert.revalidated;
            recomputed = r.Cert.recomputed;
          }
        end
        else begin
          Reg.incr t.m_full;
          let verified = full_verdict () in
          if verified then ignore (Cert.rebuild t.cache ~graph:t.graph);
          {
            mode = `Fallback;
            verified;
            reused = r.Cert.reused;
            revalidated = r.Cert.revalidated;
            recomputed = r.Cert.recomputed;
          }
        end
      end
      else begin
        Reg.incr t.m_full;
        let verified = full_verdict () in
        if verified then ignore (Cert.rebuild t.cache ~graph:t.graph);
        { mode = `Fallback; verified; reused = 0; revalidated = 0; recomputed = 0 }
      end

let commit_epoch t =
  let started = Sys.time () in
  let reqs = List.rev t.queue in
  t.queue <- [];
  let index = t.epochs in
  let n_before = t.n in
  if Reg.enabled t.obs then
    Reg.event_at t.obs ~at:(float_of_int index) Reg.Epoch_start ~node:n_before ~info:index;
  let accepted, rejections, n_target = validate t reqs in
  (* candidate A: in-place repair on the incremental engine *)
  let repair =
    match t.engine with
    | Some engine when t.synced ->
        let ops = trial_apply engine accepted in
        let d = Diff.edges ~old_graph:t.graph ~new_graph:(Incremental.graph engine) in
        Some (engine, ops, d)
    | _ -> None
  in
  (* candidate B: canonical rebuild at the target size *)
  let rebuild =
    match Membership.create ~family:t.family ~k:t.k ~n:n_target with
    | Ok m -> Ok (Membership.graph m)
    | Error e -> Error e
  in
  let rebuild_diff =
    match rebuild with
    | Ok g -> Some (g, Diff.edges ~old_graph:t.graph ~new_graph:g)
    | Error _ -> None
  in
  let cost_repair = Option.map (fun (_, _, d) -> Diff.cost d) repair in
  let cost_rebuild = Option.map (fun (_, d) -> Diff.cost d) rebuild_diff in
  let chosen =
    match (repair, rebuild_diff) with
    | Some r, Some b ->
        (* ties go to repair: it keeps every surviving id in place *)
        if Diff.cost (let _, _, d = r in d) <= Diff.cost (snd b) then Ok (`Repair r)
        else Ok (`Rebuild b)
    | Some r, None -> Ok (`Repair r)
    | None, Some b -> Ok (`Rebuild b)
    | None, None -> (
        match rebuild with Error e -> Error e | Ok _ -> assert false)
  in
  match chosen with
  | Error e ->
      (* nothing applicable: put the batch back and report *)
      t.queue <- List.rev reqs;
      Error e
  | Ok pick ->
      let strategy, diff =
        match pick with
        | `Repair (engine, _, d) ->
            t.graph <- Graph.copy (Incremental.graph engine);
            (Repair, d)
        | `Rebuild (g, d) ->
            (match repair with
            | Some (engine, ops, _) ->
                rollback engine ops;
                t.synced <- false
            | None -> ());
            t.graph <- g;
            (Rebuild, d)
      in
      t.n <- Graph.n t.graph;
      t.epochs <- index + 1;
      let verification = verify_epoch t ~diff in
      let audit = run_audit t ~index in
      let applied = List.length accepted in
      Reg.incr t.m_epochs;
      Reg.add t.m_applied applied;
      Reg.add t.m_rejected (List.length rejections);
      if Reg.enabled t.obs then begin
        Reg.observe t.h_cost (float_of_int (Diff.cost diff));
        Reg.observe t.h_ms ((Sys.time () -. started) *. 1000.0);
        Reg.set (Reg.gauge t.obs "ctrl.n") (float_of_int t.n);
        t.rewired <- t.rewired + Diff.cost diff;
        Reg.set (Reg.gauge t.obs "ctrl.rewired") (float_of_int t.rewired);
        Reg.event_at t.obs ~at:(float_of_int index) Reg.Epoch_end ~node:t.n
          ~info:(Diff.cost diff)
      end;
      Ok
        {
          index;
          n_before;
          n_after = t.n;
          applied;
          rejections;
          strategy;
          cost_repair;
          cost_rebuild;
          diff;
          verification;
          audit;
        }

let run ?(batch = 8) t reqs =
  if batch < 1 then invalid_arg "Controller.run: batch must be >= 1";
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | rest ->
        let now, later =
          let rec split i acc = function
            | r :: tl when i < batch -> split (i + 1) (r :: acc) tl
            | tl -> (List.rev acc, tl)
          in
          split 0 [] rest
        in
        List.iter (feed t) now;
        (match commit_epoch t with Ok e -> go (e :: acc) later | Error err -> Error err)
  in
  go [] reqs

(* {2 Traces} *)

let parse_trace text =
  let lines = String.split_on_char '\n' text in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some j -> String.sub line 0 j
          | None -> line
        in
        match String.trim line with
        | "" -> go (i + 1) acc rest
        | "join" -> go (i + 1) (Join :: acc) rest
        | "leave" -> go (i + 1) (Leave :: acc) rest
        | s -> (
            match String.split_on_char ' ' s with
            | [ "resize"; m ] -> (
                match int_of_string_opt m with
                | Some m -> go (i + 1) (Resize m :: acc) rest
                | None ->
                    Error (Error.Invalid_trace { line = i; reason = "resize needs an integer" }))
            | _ ->
                Error
                  (Error.Invalid_trace
                     { line = i; reason = Printf.sprintf "unknown request %S" s })))
  in
  go 1 [] lines

let random_trace ~seed ?(join_probability = 0.55) ~family ~k ~n0 ~steps () =
  let floor = floor_of ~family ~k in
  let rng = Prng.create ~seed in
  let sim = ref n0 in
  List.init steps (fun _ ->
      let joining = !sim <= floor || Prng.float rng 1.0 < join_probability in
      if joining then begin
        incr sim;
        Join
      end
      else begin
        decr sim;
        Leave
      end)

(* {2 lhg-reconfig/1 emission} *)

let schema = "lhg-reconfig/1"

let mode_name = function `Cached -> "cached" | `Fallback -> "full-fallback" | `Full -> "full"

let edges_json edges =
  "["
  ^ String.concat ", " (List.map (fun (u, v) -> Printf.sprintf "[%d, %d]" u v) edges)
  ^ "]"

(* every epoch object carries its own schema field, so a single epoch
   cut out of the run document is still a self-describing lhg-reconfig/1
   record *)
let epoch_fields s e =
  let module S = Obs.Stream in
  S.int s "epoch" e.index;
  S.int s "n_before" e.n_before;
  S.int s "n_after" e.n_after;
  S.str s "strategy" (strategy_name e.strategy);
  S.obj s "cost" (fun s ->
      let opt k = function None -> S.null s k | Some c -> S.int s k c in
      opt "repair" e.cost_repair;
      opt "rebuild" e.cost_rebuild;
      S.int s "chosen" (Diff.cost e.diff));
  S.obj s "requests" (fun s ->
      S.int s "applied" e.applied;
      S.int s "rejected" (List.length e.rejections));
  S.obj s "diff" (fun s ->
      S.raw s "added" (edges_json e.diff.Diff.added);
      S.raw s "removed" (edges_json e.diff.Diff.removed);
      S.int s "kept" e.diff.Diff.kept);
  S.obj s "verification" (fun s ->
      S.str s "mode" (mode_name e.verification.mode);
      S.bool s "verified" e.verification.verified;
      S.int s "reused" e.verification.reused;
      S.int s "revalidated" e.verification.revalidated;
      S.int s "recomputed" e.verification.recomputed);
  match e.audit with
  | None -> S.null s "chaos"
  | Some a ->
      S.obj s "chaos" (fun s ->
          S.int s "plans" (List.length a.Chaos.Audit.reports);
          S.bool s "boundary_ok" a.Chaos.Audit.boundary_ok)

let epoch_to_json e =
  let s = Obs.Stream.create ~schema () in
  epoch_fields s e;
  Obs.Stream.contents s

let run_to_json t epochs =
  let module S = Obs.Stream in
  let s = S.create ~schema () in
  S.str s "family" (Membership.family_name t.family);
  S.int s "k" t.k;
  S.int s "n0" t.n0;
  S.int s "n" t.n;
  S.arr s "epochs" (fun s ->
      List.iter
        (fun e ->
          S.element s (fun s ->
              S.str s "schema" schema;
              epoch_fields s e))
        epochs);
  let applied = List.fold_left (fun a e -> a + e.applied) 0 epochs in
  let rejected = List.fold_left (fun a e -> a + List.length e.rejections) 0 epochs in
  let cost = List.fold_left (fun a e -> a + Diff.cost e.diff) 0 epochs in
  let cached =
    List.fold_left
      (fun a e -> a + match e.verification.mode with `Cached -> 1 | _ -> 0)
      0 epochs
  in
  let full = List.length epochs - cached in
  let all_verified = List.for_all epoch_verified epochs in
  let boundary_ok =
    List.for_all
      (fun e -> match e.audit with None -> true | Some a -> a.Chaos.Audit.boundary_ok)
      epochs
  in
  S.summary s (fun s ->
      S.int s "epochs" (List.length epochs);
      S.int s "applied" applied;
      S.int s "rejected" rejected;
      S.int s "total_cost" cost;
      S.int s "cached_epochs" cached;
      S.int s "full_verifies" full;
      S.bool s "all_verified" all_verified;
      S.bool s "boundary_ok" boundary_ok);
  S.contents s

let pp_epoch fmt e =
  Format.fprintf fmt "epoch %d: n %d -> %d via %s (cost %d%s), %d applied, %d rejected, %s%s"
    e.index e.n_before e.n_after (strategy_name e.strategy) (Diff.cost e.diff)
    (match (e.cost_repair, e.cost_rebuild) with
    | Some r, Some b -> Printf.sprintf "; repair %d vs rebuild %d" r b
    | _ -> "")
    e.applied (List.length e.rejections)
    (if e.verification.verified then
       Printf.sprintf "verified (%s)" (mode_name e.verification.mode)
     else "NOT VERIFIED")
    (match e.audit with
    | None -> ""
    | Some a ->
        Printf.sprintf ", chaos %s"
          (if a.Chaos.Audit.boundary_ok then "boundary ok" else "BOUNDARY VIOLATED"))
