module Graph = Graph_core.Graph

type op = Added_leaf | Group_formed | Group_converted

type join_report = { op : op; new_vertex : int; edges_added : int; edges_removed : int }

let op_name = function
  | Added_leaf -> "added-leaf"
  | Group_formed -> "group-formed"
  | Group_converted -> "group-converted"

(* A leaf position of a frontier parent. [Shared] is one vertex joined
   to every parent copy; [Group] is a k-clique, member i joined to
   parent copy i; [Converted] positions have become internal nodes and
   left the frontier. *)
type position = Shared of int | Group of int array | Converted

type parent = {
  copies : int array;  (** k vertex ids, index = tree copy *)
  positions : position array;
  mutable added : int list;  (** added-leaf vertex ids, newest first, <= k-2 *)
}

(* Undo log. Cursor moves are interleaved with operations so that undoing
   restores the traversal state exactly. *)
type record =
  | R_added of { p : parent; v : int }
  | R_group of { p : parent; idx : int; members : int array; saved_added : int list; v : int }
  | R_convert of {
      p : parent;
      idx : int;
      members : int array;
      children : int array;
      saved_added : int list;
      v : int;
      child_parent : parent;
    }
  | R_cursor of { prev : parent }

type t = {
  k : int;
  g : Graph.t;
  mutable frontier : parent list;  (** BFS order; head is next to activate *)
  mutable active : parent;
  mutable history : record list;
  mutable rewired : int;
  obs : Obs.Registry.t;
  h_cost : Obs.Registry.histogram;  (** incremental.cost *)
}

let start ?(obs = Obs.Registry.nil) ~k () =
  if k < 3 then invalid_arg "Incremental.start: k must be >= 3";
  let g = Graph.create ~n:0 in
  let copies = Array.init k (fun _ -> Graph.append_vertex g) in
  let positions =
    Array.init k (fun _ ->
        let leaf = Graph.append_vertex g in
        Array.iter (fun r -> Graph.add_edge g r leaf) copies;
        Shared leaf)
  in
  let root = { copies; positions; added = [] } in
  let h_cost = Obs.Registry.histogram obs "incremental.cost" ~bounds:Obs.Registry.hop_bounds in
  { k; g; frontier = []; active = root; history = []; rewired = 0; obs; h_cost }

let graph t = t.g

let n t = Graph.n t.g

let k t = t.k

let find_position p pred =
  let found = ref (-1) in
  Array.iteri (fun i pos -> if !found < 0 && pred pos then found := i) p.positions;
  !found

let add_added_leaf t =
  let p = t.active in
  let x = Graph.append_vertex t.g in
  Array.iter (fun c -> Graph.add_edge t.g c x) p.copies;
  p.added <- x :: p.added;
  t.history <- R_added { p; v = x } :: t.history;
  { op = Added_leaf; new_vertex = x; edges_added = t.k; edges_removed = 0 }

let form_group t idx =
  let p = t.active in
  let shared =
    match p.positions.(idx) with
    | Shared v -> v
    | Group _ | Converted -> invalid_arg "Incremental.form_group: not a shared position"
  in
  let saved_added = p.added in
  let x = Graph.append_vertex t.g in
  (* members, by copy index: the absorbed shared leaf, the added leaves,
     then the new peer *)
  let members = Array.make t.k x in
  members.(0) <- shared;
  List.iteri (fun i a -> members.(i + 1) <- a) (List.rev p.added);
  let removed = ref 0 and added_edges = ref 0 in
  (* absorbed leaves keep exactly the parent edge of their own copy *)
  Array.iteri
    (fun i m ->
      if m <> x then
        Array.iteri
          (fun j c ->
            if j <> i && Graph.has_edge t.g c m then begin
              Graph.remove_edge t.g c m;
              incr removed
            end)
          p.copies)
    members;
  Graph.add_edge t.g p.copies.(t.k - 1) x;
  incr added_edges;
  for a = 0 to t.k - 1 do
    for b = a + 1 to t.k - 1 do
      Graph.add_edge t.g members.(a) members.(b);
      incr added_edges
    done
  done;
  p.positions.(idx) <- Group members;
  p.added <- [];
  t.history <- R_group { p; idx; members; saved_added; v = x } :: t.history;
  { op = Group_formed; new_vertex = x; edges_added = !added_edges; edges_removed = !removed }

let convert_group t idx =
  let p = t.active in
  let members =
    match p.positions.(idx) with
    | Group ms -> ms
    | Shared _ | Converted -> invalid_arg "Incremental.convert_group: not a group position"
  in
  let saved_added = p.added in
  let x = Graph.append_vertex t.g in
  let removed = ref 0 and added_edges = ref 0 in
  (* drop the clique: members become the k copies of an internal node *)
  for a = 0 to t.k - 1 do
    for b = a + 1 to t.k - 1 do
      Graph.remove_edge t.g members.(a) members.(b);
      incr removed
    done
  done;
  (* children: the k-2 rewired added leaves plus the new peer *)
  let children = Array.of_list (List.rev p.added @ [ x ]) in
  Array.iter
    (fun child ->
      if child <> x then
        Array.iter
          (fun c ->
            if Graph.has_edge t.g c child then begin
              Graph.remove_edge t.g c child;
              incr removed
            end)
          p.copies;
      Array.iter
        (fun m ->
          Graph.add_edge t.g m child;
          incr added_edges)
        members)
    children;
  p.positions.(idx) <- Converted;
  p.added <- [];
  (* the ex-group is now a frontier parent with k-1 shared positions *)
  let child_parent =
    {
      copies = Array.copy members;
      positions = Array.map (fun child -> Shared child) children;
      added = [];
    }
  in
  t.frontier <- t.frontier @ [ child_parent ];
  t.history <- R_convert { p; idx; members; children; saved_added; v = x; child_parent } :: t.history;
  { op = Group_converted; new_vertex = x; edges_added = !added_edges; edges_removed = !removed }

let publish_op t kind report =
  if Obs.Registry.enabled t.obs then begin
    Obs.Registry.observe t.h_cost (float_of_int (report.edges_added + report.edges_removed));
    (* no virtual clock here either: stamp with the post-op overlay size
       so a join/leave trace reads as a walk on n *)
    Obs.Registry.event_at t.obs ~at:(float_of_int (Graph.n t.g)) kind ~node:report.new_vertex
      ~info:(report.edges_added + report.edges_removed)
  end

let rec join_inner t =
  let p = t.active in
  let shared_idx = find_position p (function Shared _ -> true | _ -> false) in
  let group_idx = find_position p (function Group _ -> true | _ -> false) in
  if shared_idx < 0 && group_idx < 0 then begin
    (* parent exhausted: move the cursor in BFS order *)
    match t.frontier with
    | [] -> invalid_arg "Incremental.join: frontier exhausted (impossible for k >= 3)"
    | next :: rest ->
        t.history <- R_cursor { prev = t.active } :: t.history;
        t.active <- next;
        t.frontier <- rest;
        join_inner t
  end
  else begin
    let report =
      if List.length p.added < t.k - 2 then add_added_leaf t
      else if shared_idx >= 0 then form_group t shared_idx
      else convert_group t group_idx
    in
    t.rewired <- t.rewired + report.edges_added + report.edges_removed;
    report
  end

let join t =
  let report = join_inner t in
  publish_op t Obs.Registry.Churn_join report;
  report

let drop_tail_parent t target =
  let rec go = function
    | [] -> invalid_arg "Incremental.leave: frontier bookkeeping corrupt"
    | [ last ] ->
        if last != target then invalid_arg "Incremental.leave: frontier bookkeeping corrupt";
        []
    | x :: rest -> x :: go rest
  in
  t.frontier <- go t.frontier

let rec leave_inner t =
  match t.history with
  | [] -> Error (Error.At_base_size { k = t.k })
  | R_cursor { prev } :: rest ->
      (* put the active parent back at the head of the frontier *)
      t.frontier <- t.active :: t.frontier;
      t.active <- prev;
      t.history <- rest;
      leave_inner t
  | R_added { p; v } :: rest ->
      (match p.added with
      | hd :: tl when hd = v -> p.added <- tl
      | _ -> invalid_arg "Incremental.leave: added-leaf bookkeeping corrupt");
      Array.iter (fun c -> Graph.remove_edge t.g c v) p.copies;
      Graph.pop_vertex t.g;
      t.history <- rest;
      t.rewired <- t.rewired + t.k;
      Ok { op = Added_leaf; new_vertex = v; edges_added = 0; edges_removed = t.k }
  | R_group { p; idx; members; saved_added; v } :: rest ->
      let removed = ref 0 and added_edges = ref 0 in
      for a = 0 to t.k - 1 do
        for b = a + 1 to t.k - 1 do
          Graph.remove_edge t.g members.(a) members.(b);
          incr removed
        done
      done;
      Graph.remove_edge t.g p.copies.(t.k - 1) v;
      incr removed;
      (* restore full parent links of the absorbed leaves *)
      Array.iteri
        (fun i m ->
          if m <> v then
            Array.iteri
              (fun j c ->
                if j <> i then begin
                  Graph.add_edge t.g c m;
                  incr added_edges
                end)
              p.copies)
        members;
      p.positions.(idx) <- Shared members.(0);
      p.added <- saved_added;
      Graph.pop_vertex t.g;
      t.history <- rest;
      t.rewired <- t.rewired + !removed + !added_edges;
      Ok { op = Group_formed; new_vertex = v; edges_added = !added_edges; edges_removed = !removed }
  | R_convert { p; idx; members; children; saved_added; v; child_parent } :: rest ->
      drop_tail_parent t child_parent;
      let removed = ref 0 and added_edges = ref 0 in
      Array.iter
        (fun child ->
          Array.iter
            (fun m ->
              Graph.remove_edge t.g m child;
              incr removed)
            members;
          if child <> v then
            Array.iter
              (fun c ->
                Graph.add_edge t.g c child;
                incr added_edges)
              p.copies)
        children;
      for a = 0 to t.k - 1 do
        for b = a + 1 to t.k - 1 do
          Graph.add_edge t.g members.(a) members.(b);
          incr added_edges
        done
      done;
      p.positions.(idx) <- Group members;
      p.added <- saved_added;
      Graph.pop_vertex t.g;
      t.history <- rest;
      t.rewired <- t.rewired + !removed + !added_edges;
      Ok
        { op = Group_converted; new_vertex = v; edges_added = !added_edges; edges_removed = !removed }

let leave t =
  match leave_inner t with
  | Error _ as e -> e
  | Ok report ->
      publish_op t Obs.Registry.Churn_leave report;
      Ok report

let joins t ~count = List.init count (fun _ -> join t)

let total_rewired t = t.rewired
