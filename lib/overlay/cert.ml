module Graph = Graph_core.Graph
module Menger = Graph_core.Menger
module Bfs = Graph_core.Bfs
module Verify = Lhg_core.Verify

type report = {
  connectivity_ok : bool;
  diameter_ok : bool;
  reused : int;
  revalidated : int;
  recomputed : int;
}

let ok r = r.connectivity_ok && r.diameter_ok

type t = {
  k : int;
  mutable armed : bool;
  mutable n : int;  (** size the certificates cover *)
  mutable fans : int list list array;
      (** index u ≥ k: a k-fan — k paths from the k hub vertices to u,
          vertex-disjoint except at u. Slots below k are unused. *)
  mutable pairs : int list list array;
      (** index p over hub pairs (i,j), i < j < k: k internally disjoint
          i–j paths. *)
}

let create ~k =
  if k < 2 then invalid_arg "Cert.create: k must be >= 2";
  { k; armed = false; n = 0; fans = [||]; pairs = [||] }

let armed t = t.armed

let pair_count k = k * (k - 1) / 2

(* pairs are enumerated (0,1) (0,2) .. (0,k-1) (1,2) .. ; the inverse
   mapping is only needed for recomputation, where we re-enumerate. *)
let iter_hub_pairs k f =
  let p = ref 0 in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      f !p i j;
      incr p
    done
  done

let hub_sources k = List.init k Fun.id

(* A stored path still witnesses iff every vertex is in range and every
   consecutive pair is still an edge. Added edges can never break a
   certificate, so this is the whole invalidation story. *)
let path_intact g ~n p =
  let rec go = function
    | u :: (v :: _ as rest) -> u < n && v < n && Graph.has_edge g u v && go rest
    | [ u ] -> u < n
    | [] -> true
  in
  go p

let fan_intact g ~n paths = List.length paths > 0 && List.for_all (path_intact g ~n) paths

(* Dirtiness: does any stored path touch a vertex invalidated by this
   epoch's diff (an endpoint of a removed edge, or a retired id)? *)
let touches touched paths =
  List.exists (List.exists (fun v -> v >= Array.length touched || touched.(v))) paths

let probe_fan t g ~target = Menger.fan_paths ~limit:t.k g ~sources:(hub_sources t.k) ~t:target

let probe_pair t g ~i ~j = Menger.vertex_disjoint_paths ~limit:t.k g ~s:i ~t:j

(* Recompute every certificate from scratch. Succeeds (arming the
   cache) iff every probe yields k paths — by the hub argument below
   this certifies κ(g) ≥ k, which is exactly when a verified graph can
   arm the cache. *)
let rebuild t ~graph:g =
  let n = Graph.n g in
  if n <= t.k then (
    t.armed <- false;
    false)
  else begin
    let fans = Array.make n [] in
    let pairs = Array.make (pair_count t.k) [] in
    let ok = ref true in
    iter_hub_pairs t.k (fun p i j ->
        if !ok then begin
          let paths = probe_pair t g ~i ~j in
          if List.length paths >= t.k then pairs.(p) <- paths else ok := false
        end);
    let u = ref t.k in
    while !ok && !u < n do
      let paths = probe_fan t g ~target:!u in
      if List.length paths >= t.k then fans.(!u) <- paths else ok := false;
      incr u
    done;
    t.n <- n;
    t.fans <- fans;
    t.pairs <- pairs;
    t.armed <- !ok;
    !ok
  end

let check_diameter g ~k =
  (* One BFS: diameter ≤ 2·ecc(0). Exact only up to a factor 2, but the
     P4 bound has slack; when the approximation exceeds the bound the
     caller falls back to a full verification with the exact sweep. *)
  match Bfs.eccentricity g ~src:0 with
  | None -> false
  | Some e -> 2 * e <= Verify.diameter_bound ~n:(Graph.n g) ~k

let check t ~graph:g ~removed =
  if not t.armed then invalid_arg "Cert.check: cache not armed";
  let n = Graph.n g in
  let n_old = t.n in
  let touched = Array.make (max n n_old) false in
  List.iter
    (fun (u, v) ->
      if u < Array.length touched then touched.(u) <- true;
      if v < Array.length touched then touched.(v) <- true)
    removed;
  for v = n to n_old - 1 do
    touched.(v) <- true
  done;
  let reused = ref 0 and revalidated = ref 0 and recomputed = ref 0 in
  let conn_ok = ref true in
  let refresh stored recompute =
    (* three tiers: untouched certificates are served as-is; touched
       ones are re-walked against the live graph (O(path length)); only
       walks that fail pay a flow probe. *)
    if not (touches touched stored) then begin
      incr reused;
      Some stored
    end
    else if fan_intact g ~n stored then begin
      incr revalidated;
      Some stored
    end
    else begin
      incr recomputed;
      let paths = recompute () in
      if List.length paths >= t.k then Some paths else None
    end
  in
  let pairs = Array.make (pair_count t.k) [] in
  iter_hub_pairs t.k (fun p i j ->
      if !conn_ok then
        match refresh t.pairs.(p) (fun () -> probe_pair t g ~i ~j) with
        | Some paths -> pairs.(p) <- paths
        | None -> conn_ok := false);
  let fans = Array.make (max n 1) [] in
  let u = ref t.k in
  while !conn_ok && !u < n do
    let stored = if !u < n_old then t.fans.(!u) else [] in
    (if !u >= n_old then begin
       (* a vertex admitted this epoch: no stored certificate yet *)
       incr recomputed;
       let paths = probe_fan t g ~target:!u in
       if List.length paths >= t.k then fans.(!u) <- paths else conn_ok := false
     end
     else
       match refresh stored (fun () -> probe_fan t g ~target:!u) with
       | Some paths -> fans.(!u) <- paths
       | None -> conn_ok := false);
    incr u
  done;
  if !conn_ok then begin
    t.n <- n;
    t.fans <- fans;
    t.pairs <- pairs
  end
  else t.armed <- false;
  {
    connectivity_ok = !conn_ok;
    diameter_ok = (if !conn_ok then check_diameter g ~k:t.k else false);
    reused = !reused;
    revalidated = !revalidated;
    recomputed = !recomputed;
  }
