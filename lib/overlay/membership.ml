module Graph = Graph_core.Graph
module Build = Lhg_core.Build

type family = Ktree | Kdiamond | Jd | Harary_classic

let family_name = function
  | Ktree -> "ktree"
  | Kdiamond -> "kdiamond"
  | Jd -> "jd"
  | Harary_classic -> "harary"

type t = {
  family : family;
  k : int;
  mutable n : int;
  mutable graph : Graph.t;
  mutable witness : Build.t option;
}

let build_for ~family ~k ~n =
  let fail reason = Error (Error.No_topology { family = family_name family; n; k; reason }) in
  let of_result = function
    | Ok (b : Build.t) -> Ok (b.Build.graph, Some b)
    | Error e -> fail (Build.error_to_string e)
  in
  match family with
  | Ktree -> of_result (Build.ktree ~n ~k)
  | Kdiamond -> of_result (Build.kdiamond ~n ~k)
  | Jd -> of_result (Build.jd ~n ~k ())
  | Harary_classic ->
      if k >= 2 && k < n then Ok (Harary.make ~k ~n, None) else fail "needs 2 <= k < n"

let create ~family ~k ~n =
  match build_for ~family ~k ~n with
  | Ok (graph, witness) -> Ok { family; k; n; graph; witness }
  | Error e -> Error e

let graph t = t.graph

let n t = t.n

let k t = t.k

let family t = t.family

let witness t = t.witness

let resize t ~target =
  match build_for ~family:t.family ~k:t.k ~n:target with
  | Error e -> Error e
  | Ok (new_graph, new_witness) ->
      let d = Diff.edges ~old_graph:t.graph ~new_graph in
      t.n <- target;
      t.graph <- new_graph;
      t.witness <- new_witness;
      Ok d

let join t = resize t ~target:(t.n + 1)

let leave t = resize t ~target:(t.n - 1)
