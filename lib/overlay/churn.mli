(** Churn simulation: a random join/leave trace against one overlay
    family, aggregating rewiring cost.

    The trace is a bounded random walk on n: each step joins with the
    given probability, otherwise leaves; n never drops below the floor.
    Steps a family cannot serve (JD gaps) are recorded as [skipped] and
    the walk continues from the unchanged size — exactly the operational
    pain §4.4 ascribes to the JD rule. *)

type stats = {
  ops : int;  (** successful membership changes *)
  skipped : int;  (** changes the family had no topology for *)
  total_added : int;
  total_removed : int;
  mean_cost : float;  (** mean (added+removed) per successful op *)
  max_cost : int;
  final_n : int;
}

val run :
  Graph_core.Prng.t ->
  family:Membership.family ->
  k:int ->
  n0:int ->
  steps:int ->
  ?join_probability:float ->
  ?obs:Obs.Registry.t ->
  unit ->
  (stats, Error.t) result
(** Simulate [steps] membership events starting from n0 (default join
    probability 0.55, so overlays slowly grow). Fails when the initial
    overlay cannot be built, when [steps] is negative
    ({!Error.Invalid_steps}) or when [join_probability] is outside
    [0,1] — including NaN ({!Error.Invalid_probability}).

    With [?obs], publishes the [churn.ops]/[churn.skipped] counters, a
    [churn.cost] rewiring-cost histogram, the [churn.final_n] gauge, and
    one [Churn_join]/[Churn_leave] span event per successful op stamped
    with the step number (the walk has no virtual clock of its own);
    [node] carries the post-op overlay size and [info] the edge cost. *)

val pp_stats : Format.formatter -> stats -> unit
