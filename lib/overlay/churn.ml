module Prng = Graph_core.Prng

type stats = {
  ops : int;
  skipped : int;
  total_added : int;
  total_removed : int;
  mean_cost : float;
  max_cost : int;
  final_n : int;
}

let run rng ~family ~k ~n0 ~steps ?(join_probability = 0.55) ?(obs = Obs.Registry.nil) () =
  (* written as a double negation so NaN (which fails every comparison)
     is rejected too *)
  if not (join_probability >= 0.0 && join_probability <= 1.0) then
    Error (Error.Invalid_probability join_probability)
  else if steps < 0 then Error (Error.Invalid_steps steps)
  else
  match Membership.create ~family ~k ~n:n0 with
  | Error e -> Error e
  | Ok overlay ->
      let floor = 2 * k in
      let ops = ref 0 and skipped = ref 0 in
      let total_added = ref 0 and total_removed = ref 0 and max_cost = ref 0 in
      let m_ops = Obs.Registry.counter obs "churn.ops" in
      let m_skipped = Obs.Registry.counter obs "churn.skipped" in
      let h_cost = Obs.Registry.histogram obs "churn.cost" ~bounds:Obs.Registry.hop_bounds in
      for step = 1 to steps do
        let joining =
          Membership.n overlay <= floor || Prng.float rng 1.0 < join_probability
        in
        let result = if joining then Membership.join overlay else Membership.leave overlay in
        match result with
        | Error _ -> incr skipped; Obs.Registry.incr m_skipped
        | Ok d ->
            incr ops;
            Obs.Registry.incr m_ops;
            let cost = Diff.cost d in
            total_added := !total_added + List.length d.Diff.added;
            total_removed := !total_removed + List.length d.Diff.removed;
            if cost > !max_cost then max_cost := cost;
            if Obs.Registry.enabled obs then begin
              Obs.Registry.observe h_cost (float_of_int cost);
              (* the churn walk has no simulated clock; stamp events with
                 the step number so traces order correctly *)
              Obs.Registry.event_at obs ~at:(float_of_int step)
                (if joining then Obs.Registry.Churn_join else Obs.Registry.Churn_leave)
                ~node:(Membership.n overlay) ~info:cost
            end
      done;
      if Obs.Registry.enabled obs then
        Obs.Registry.set (Obs.Registry.gauge obs "churn.final_n")
          (float_of_int (Membership.n overlay));
      Ok
        {
          ops = !ops;
          skipped = !skipped;
          total_added = !total_added;
          total_removed = !total_removed;
          mean_cost =
            (if !ops = 0 then 0.0
             else float_of_int (!total_added + !total_removed) /. float_of_int !ops);
          max_cost = !max_cost;
          final_n = Membership.n overlay;
        }

let pp_stats fmt s =
  Format.fprintf fmt
    "churn(ops=%d, skipped=%d, +%d/-%d edges, mean %.1f per op, max %d, final n=%d)" s.ops
    s.skipped s.total_added s.total_removed s.mean_cost s.max_cost s.final_n
