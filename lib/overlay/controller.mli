(** Epoch-based overlay reconfiguration.

    The controller is the long-lived engine the batch tools only
    simulate: it ingests a stream of join/leave/resize requests,
    batches them into {b epochs}, and per epoch picks the cheaper of
    two reconfiguration strategies by projected {!Diff.cost}:

    - {b repair} — apply the events in place on the
      {!Incremental} engine (O(k²) edges per event, ids stable);
    - {b rebuild} — build the family's canonical topology at the
      target size ({!Membership}) and ship one diff.

    Both candidates are actually materialised: the repair candidate is
    trial-applied on the engine (every operation is exactly invertible,
    so a losing trial rolls back in place) and the winning graph
    becomes the authoritative overlay. Once a rebuild wins, the
    authoritative graph leaves the incremental construction's family
    and later epochs are rebuild-only.

    Each committed epoch is re-verified. In [Cached] mode the
    {!Cert} cache re-proves P1/P2/P4 by re-probing only the
    certificates the epoch's diff invalidated, falling back to a full
    {!Lhg_core.Verify.quick} (over [?pool]) only when a probe fails —
    the amortized per-event cost the paper's online setting asks for.
    With [?chaos], every epoch additionally replays an adversarial
    fault sweep ({!Chaos.Audit}) against the {e new} overlay, showing
    the k−1 boundary holds mid-reconfiguration.

    Every epoch serialises to one versioned [lhg-reconfig/1] JSON
    object that a client could apply; output is byte-identical at any
    pool size. *)

type request = Join | Leave | Resize of int

val request_to_string : request -> string

type chaos

val chaos :
  ?plans_per_level:int -> ?max_faults:int -> ?seed:int -> Chaos.Gen.adversary -> chaos
(** Per-epoch chaos policy: a fresh sweep (default 2 plans per fault
    level, fault budget up to [max_faults], default k) is generated and
    audited after each epoch commits, with rngs and flood seeds derived
    from [seed] (default 1) and the epoch index. *)

type verify_mode =
  | Cached  (** certificate cache, full verification only on probe failure *)
  | Full  (** full [Verify.quick] every epoch — the baseline the cache beats *)

type strategy = Repair | Rebuild

val strategy_name : strategy -> string

type verification = {
  mode : [ `Cached | `Fallback | `Full ];
      (** [`Fallback] is a [Cached]-mode epoch that had to run the full
          verification (probe failure or unarmed cache). *)
  verified : bool;
  reused : int;
  revalidated : int;
  recomputed : int;
}

type rejection = { at : int; request : request; error : Error.t }

type epoch = {
  index : int;
  n_before : int;
  n_after : int;
  applied : int;
  rejections : rejection list;  (** requests refused by validation, in order *)
  strategy : strategy;
  cost_repair : int option;  (** projected cost of the repair candidate *)
  cost_rebuild : int option;
  diff : Diff.t;  (** the committed reconfiguration *)
  verification : verification;
  audit : Chaos.Audit.t option;
}

val epoch_verified : epoch -> bool

val epoch_ok : epoch -> bool
(** Verified, and the chaos audit (when run) kept the boundary. *)

type t

val create :
  ?obs:Obs.Registry.t ->
  ?pool:Par.Pool.t ->
  ?verify:verify_mode ->
  ?chaos:chaos ->
  family:Membership.family ->
  k:int ->
  n:int ->
  unit ->
  (t, Error.t) result
(** A controller at initial size [n] (defaults: [Cached], no chaos).
    For the kdiamond family with k ≥ 3 the authoritative overlay starts
    as the incremental engine's graph (grown in place to [n]) so repair
    is available from the first epoch; other families start canonical
    and reconfigure by rebuild. With [?obs], publishes [ctrl.*]
    counters (epochs, applied, rejected, certificate reuse tiers,
    cached/full verifications), the [ctrl.epoch_cost] and
    [ctrl.epoch_ms] histograms, [ctrl.n]/[ctrl.rewired] gauges, and an
    [Epoch_start]/[Epoch_end] span pair stamped with the epoch index. *)

val graph : t -> Graph_core.Graph.t
(** The authoritative overlay. Callers must not mutate it. *)

val base_graph : t -> Graph_core.Graph.t
(** The epoch-0 overlay, frozen — replaying every epoch diff onto it
    reproduces {!graph}. *)

val n : t -> int
val k : t -> int
val family : t -> Membership.family
val epoch_count : t -> int

val feed : t -> request -> unit
(** Queue a request for the next epoch. The incremental step API:
    interleave [feed]s with {!commit_epoch}s to advance the overlay
    one epoch at a time — e.g. on a shared simulated clock, between
    bursts of a live traffic stream. *)

val pending : t -> int

val commit_epoch : t -> (epoch, Error.t) result
(** Commit the queued batch as one epoch (an empty batch is a valid,
    empty epoch). Fails — leaving the queue intact and the overlay
    unchanged — only when no strategy can reach the target size (e.g. a
    JD gap with no repair engine). *)

val run : ?batch:int -> t -> request list -> (epoch list, Error.t) result
(** Feed a whole trace in batches of [batch] (default 8) requests per
    epoch — a thin loop of {!feed}s and {!commit_epoch}s.
    @raise Invalid_argument when [batch < 1]. *)

(** {2 Traces} *)

val parse_trace : string -> (request list, Error.t) result
(** One request per line — [join], [leave] or [resize N]; [#] starts a
    comment. *)

val random_trace :
  seed:int ->
  ?join_probability:float ->
  family:Membership.family ->
  k:int ->
  n0:int ->
  steps:int ->
  unit ->
  request list
(** The {!Churn} random walk as a request list: each step joins with
    [join_probability] (default 0.55), never walking below the family
    floor. *)

(** {2 lhg-reconfig/1} *)

val schema : string

val epoch_to_json : epoch -> string
(** One epoch as an [lhg-reconfig/1] JSON object (schema, sizes,
    strategy and projected costs, applied/rejected counts, the full
    added/removed/kept diff, verification mode and certificate-cache
    counters, chaos boundary verdict). *)

val run_to_json : t -> epoch list -> string
(** A whole run: header (family, k, n0, final n), the epoch objects,
    and a summary (totals, cached vs full verification split,
    [all_verified], [boundary_ok]). *)

val pp_epoch : Format.formatter -> epoch -> unit
