(** Connectivity-certificate cache: incremental re-verification of
    P1/P2/P4 across reconfiguration epochs.

    A full k-connectivity decision costs a batch of max-flow probes and
    a full BFS sweep on every membership event. This cache instead
    stores constructive witnesses and re-checks only what an epoch
    touched:

    - {b hub pairs} — for the hub set L = {0..k−1}, k internally
      vertex-disjoint paths between every pair of hub vertices
      ({!Graph_core.Menger.vertex_disjoint_paths});
    - {b fans} — for every vertex u ∉ L, a k-fan: k paths from the k
      hub vertices to u, pairwise vertex-disjoint except at u
      ({!Graph_core.Menger.fan_paths}).

    {b Soundness.} If all certificates hold, κ(G) ≥ k. Suppose a cut C
    with |C| ≤ k−1 disconnected G. L ⊄ C, so some hub survives. If two
    hubs end up in different components, C must hit all k internally
    disjoint paths of their pair certificate — impossible with k−1
    vertices. So L \ C sits in one component; any separated u ∉ C has a
    fan of k paths to k distinct hubs sharing only u, and C must hit
    every one — again impossible. κ ≥ k also gives λ ≥ k (Whitney), so
    surviving certificates cover P1 and P2; P4 is re-checked with a
    single BFS from vertex 0 (diameter ≤ 2·ecc(0), falling back to the
    exact sweep only when the 2-approximation exceeds the bound).

    {b Invalidation rule.} Adding edges can never break a stored
    witness, so a certificate is dirty iff one of its path vertices is
    an endpoint of a removed edge or a retired id. Dirty certificates
    are first re-walked edge-by-edge (O(path length)); only a failed
    walk pays a max-flow probe; only a failed probe forces the caller
    back to full {!Lhg_core.Verify}. *)

type report = {
  connectivity_ok : bool;  (** every certificate holds ⟹ κ ≥ k ⟹ λ ≥ k *)
  diameter_ok : bool;  (** 2·ecc(0) within the P4 bound ([false] whenever
                           [connectivity_ok] is) *)
  reused : int;  (** certificates untouched by the epoch *)
  revalidated : int;  (** dirty certificates whose stored paths still held *)
  recomputed : int;  (** certificates recomputed by a flow probe *)
}

val ok : report -> bool
(** [connectivity_ok && diameter_ok] — the epoch is certified. *)

type t

val create : k:int -> t
(** An empty (unarmed) cache. @raise Invalid_argument when [k < 2]. *)

val armed : t -> bool
(** An armed cache certifies the last graph it accepted; {!check}
    requires it. Arm with {!rebuild} after a full verification. *)

val rebuild : t -> graph:Graph_core.Graph.t -> bool
(** Recompute every certificate from scratch; [true] (cache armed) iff
    every probe found k paths — guaranteed by Menger whenever the graph
    is actually k-connected, so rebuilding after a successful full
    verification always arms. *)

val check : t -> graph:Graph_core.Graph.t -> removed:(int * int) list -> report
(** Certify [graph], given that it differs from the last certified
    graph by this epoch's diff — [removed] are the deleted edges (the
    caller's {!Diff.t}[.removed]); retired vertices are inferred from
    the size change, and added edges need no accounting. On a failed
    probe the cache disarms and the caller must fall back to full
    verification, then {!rebuild}.
    @raise Invalid_argument when the cache is not armed. *)
