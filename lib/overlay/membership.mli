(** Overlay membership management.

    The paper targets networks with an *arbitrary* number of processes —
    peers join and leave. This module maintains the canonical topology
    of a chosen family across membership changes and reports the
    reconfiguration cost of each step: the existence results (every
    n ≥ 2k for K-TREE/K-DIAMOND) are what make this work at every size,
    where JD gets stuck and hypercubes would need to double. *)

type family = Ktree | Kdiamond | Jd | Harary_classic

val family_name : family -> string

type t

val create : family:family -> k:int -> n:int -> (t, Error.t) result
(** Initial overlay; fails when the family has no topology for (n,k)
    (e.g. JD gaps, or n < 2k). *)

val graph : t -> Graph_core.Graph.t

val n : t -> int

val k : t -> int

val family : t -> family

val witness : t -> Lhg_core.Build.t option
(** The LHG witness for the three constructive families; [None] for
    classic Harary. *)

val join : t -> (Diff.t, Error.t) result
(** Grow to n+1, returning the rewiring diff. On failure (a JD gap) the
    overlay is left unchanged. *)

val leave : t -> (Diff.t, Error.t) result
(** Shrink to n−1 (the departing peer is the highest-numbered one, as in
    the canonical labelling). Fails at the family's minimum size. *)

val resize : t -> target:int -> (Diff.t, Error.t) result
(** Jump directly to [target] vertices, one rebuild, one diff. *)
