type t =
  | No_topology of { family : string; n : int; k : int; reason : string }
  | Below_floor of { family : string; target : int; floor : int }
  | At_base_size of { k : int }
  | Invalid_probability of float
  | Invalid_steps of int
  | Invalid_trace of { line : int; reason : string }
  | Node_cap of { requested : int; cap : int }

let pp fmt = function
  | No_topology { family; n; k; reason } ->
      Format.fprintf fmt "%s has no topology at (n=%d, k=%d): %s" family n k reason
  | Below_floor { family; target; floor } ->
      Format.fprintf fmt "%s cannot shrink to n=%d (floor is %d)" family target floor
  | At_base_size { k } ->
      Format.fprintf fmt "already at the base size 2k = %d" (2 * k)
  | Invalid_probability p ->
      Format.fprintf fmt "join_probability %g outside [0,1]" p
  | Invalid_steps s -> Format.fprintf fmt "steps must be >= 0, got %d" s
  | Invalid_trace { line; reason } ->
      Format.fprintf fmt "trace line %d: %s" line reason
  | Node_cap { requested; cap } ->
      Format.fprintf fmt "n=%d exceeds the node cap %d (raise LHG_MAX_NODES to override)"
        requested cap

let to_string e = Format.asprintf "%a" pp e
