module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Build = Lhg_core.Build

type entry = {
  name : string;
  doc : string;
  admissible : n:int -> k:int -> bool;
  requirement : string;
  build : n:int -> k:int -> seed:int -> (Graph.t, string) result;
  csr : big:bool -> n:int -> k:int -> seed:int -> (Csr.t, string) result;
  direct_csr : bool;
  construction : Build.construction option;
}

(* the frozen form of [iter]'s edge set, never materialising an
   adjacency-set graph — the direct path for families whose edges are
   pure arithmetic *)
let csr_of_edges ~big ~n iter =
  let b = Csr.Builder.create ~big ~n () in
  iter (Csr.Builder.count_edge b);
  Csr.Builder.ready b;
  iter (Csr.Builder.add_edge b);
  Csr.Builder.finish b

let lhg_entry name doc construction =
  {
    name;
    doc;
    admissible =
      (fun ~n ~k -> match Build.build construction ~n ~k with Ok _ -> true | Error _ -> false);
    requirement = "n >= 2k with k >= 2 (JD additionally has parity gaps)";
    build =
      (fun ~n ~k ~seed:_ ->
        match Build.build construction ~n ~k with
        | Ok b -> Ok b.Build.graph
        | Error e -> Error (Build.error_to_string e));
    csr =
      (fun ~big ~n ~k ~seed:_ ->
        match Build.build_csr ~big construction ~n ~k with
        | Ok csr -> Ok csr
        | Error e -> Error (Build.error_to_string e));
    direct_csr = true;
    construction = Some construction;
  }

(* [?edges] gives the family a direct CSR path; entries without one
   freeze the built graph, so [csr] is total either way *)
let plain_entry name doc ~admissible ~requirement ?edges f =
  let build ~n ~k ~seed = if admissible ~n ~k then Ok (f ~n ~k ~seed) else Error requirement in
  let csr =
    match edges with
    | Some iter ->
        fun ~big ~n ~k ~seed:_ ->
          if admissible ~n ~k then Ok (csr_of_edges ~big ~n (iter ~n ~k)) else Error requirement
    | None -> fun ~big ~n ~k ~seed -> Result.map (Csr.of_graph ~big) (build ~n ~k ~seed)
  in
  { name; doc; admissible; requirement; build; csr; direct_csr = edges <> None; construction = None }

let cycle_edges ~n ~k:_ emit =
  for v = 0 to n - 1 do
    emit v ((v + 1) mod n)
  done

let complete_edges ~n ~k:_ emit =
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      emit u v
    done
  done

let hypercube_edges ~n ~k:_ emit =
  let d = ref 0 in
  while 1 lsl !d < n do
    incr d
  done;
  for v = 0 to n - 1 do
    for b = 0 to !d - 1 do
      let w = v lxor (1 lsl b) in
      if v < w then emit v w
    done
  done

let all =
  [
    lhg_entry "ktree" "K-TREE construction (Theorem 2)" Build.Ktree;
    lhg_entry "kdiamond" "K-DIAMOND construction, canonical shape (Theorem 5)" Build.Kdiamond;
    lhg_entry "kdiamond_rich" "K-DIAMOND with maximal unshared-leaf groups (the paper's figures)"
      Build.Kdiamond_rich;
    lhg_entry "jd" "Jenkins-Demers operational construction (strict rule)"
      (Build.Jd { strict = true });
    plain_entry "harary" "classic Harary graph H(k, n)"
      ~admissible:(fun ~n ~k -> k >= 2 && k < n)
      ~requirement:"harary needs 2 <= k < n"
      (fun ~n ~k ~seed:_ -> Harary.make ~k ~n);
    plain_entry "hypercube" "k-dimensional hypercube (n = 2^k)"
      ~admissible:(fun ~n ~k -> Hypercube.admissible ~n ~k)
      ~requirement:"hypercube needs n = 2^k" ~edges:hypercube_edges
      (fun ~n:_ ~k ~seed:_ -> Hypercube.make ~dim:k);
    plain_entry "expander" "random k-regular expander"
      ~admissible:(fun ~n ~k -> k mod 2 = 0 && k >= 2 && n > k)
      ~requirement:"expander needs even k >= 2 and n > k"
      (fun ~n ~k ~seed -> Expander.random_regular (Graph_core.Prng.create ~seed) ~n ~degree:k);
    (let admissible ~n ~k = Random_regular.admissible ~n ~k in
     let requirement = "random_regular needs 2 <= k < n with n*k even" in
     let build ~n ~k ~seed =
       if admissible ~n ~k then Random_regular.make (Graph_core.Prng.create ~seed) ~n ~k
       else Error requirement
     in
     {
       name = "random_regular";
       doc = "random k-regular graph (configuration model)";
       admissible;
       requirement;
       build;
       csr = (fun ~big ~n ~k ~seed -> Result.map (Csr.of_graph ~big) (build ~n ~k ~seed));
       direct_csr = false;
       construction = None;
     });
    plain_entry "cycle" "simple cycle (k ignored)"
      ~admissible:(fun ~n ~k:_ -> n >= 3)
      ~requirement:"cycle needs n >= 3" ~edges:cycle_edges
      (fun ~n ~k:_ ~seed:_ -> Graph_core.Generators.cycle n);
    plain_entry "complete" "complete graph (k ignored)"
      ~admissible:(fun ~n:_ ~k:_ -> true)
      ~requirement:"" ~edges:complete_edges
      (fun ~n ~k:_ ~seed:_ -> Graph_core.Generators.complete n);
  ]

let () =
  let ns = List.map (fun e -> e.name) all in
  if List.length (List.sort_uniq compare ns) <> List.length ns then
    invalid_arg "Topo.Registry: duplicate entry names"

let names = List.map (fun e -> e.name) all

let find name = List.find_opt (fun e -> e.name = name) all

let unknown kind =
  Error (Printf.sprintf "unknown kind %S (expected one of: %s)" kind (String.concat ", " names))

let build_graph ~kind ~n ~k ~seed =
  match find kind with None -> unknown kind | Some e -> e.build ~n ~k ~seed

let build_csr_graph ?(big = false) ~kind ~n ~k ~seed () =
  match find kind with None -> unknown kind | Some e -> e.csr ~big ~n ~k ~seed

let witness ~kind ~n ~k =
  match find kind with
  | None | Some { construction = None; _ } -> None
  | Some { construction = Some c; _ } -> (
      match Build.build c ~n ~k with Ok b -> Some b | Error _ -> None)
