module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Build = Lhg_core.Build

type entry = {
  name : string;
  doc : string;
  admissible : n:int -> k:int -> bool;
  requirement : string;
  build : n:int -> k:int -> seed:int -> (Graph.t, string) result;
  build_csr : (big:bool -> n:int -> k:int -> seed:int -> (Csr.t, string) result) option;
  construction : Build.construction option;
}

let lhg_entry name doc construction =
  {
    name;
    doc;
    admissible =
      (fun ~n ~k -> match Build.build construction ~n ~k with Ok _ -> true | Error _ -> false);
    requirement = "n >= 2k with k >= 2 (JD additionally has parity gaps)";
    build =
      (fun ~n ~k ~seed:_ ->
        match Build.build construction ~n ~k with
        | Ok b -> Ok b.Build.graph
        | Error e -> Error (Build.error_to_string e));
    build_csr =
      Some
        (fun ~big ~n ~k ~seed:_ ->
          match Build.build_csr ~big construction ~n ~k with
          | Ok csr -> Ok csr
          | Error e -> Error (Build.error_to_string e));
    construction = Some construction;
  }

let plain_entry name doc ~admissible ~requirement f =
  {
    name;
    doc;
    admissible;
    requirement;
    build =
      (fun ~n ~k ~seed ->
        if admissible ~n ~k then Ok (f ~n ~k ~seed) else Error requirement);
    build_csr = None;
    construction = None;
  }

let all =
  [
    lhg_entry "ktree" "K-TREE construction (Theorem 2)" Build.Ktree;
    lhg_entry "kdiamond" "K-DIAMOND construction, canonical shape (Theorem 5)" Build.Kdiamond;
    lhg_entry "kdiamond_rich" "K-DIAMOND with maximal unshared-leaf groups (the paper's figures)"
      Build.Kdiamond_rich;
    lhg_entry "jd" "Jenkins-Demers operational construction (strict rule)"
      (Build.Jd { strict = true });
    plain_entry "harary" "classic Harary graph H(k, n)"
      ~admissible:(fun ~n ~k -> k >= 2 && k < n)
      ~requirement:"harary needs 2 <= k < n"
      (fun ~n ~k ~seed:_ -> Harary.make ~k ~n);
    plain_entry "hypercube" "k-dimensional hypercube (n = 2^k)"
      ~admissible:(fun ~n ~k -> Hypercube.admissible ~n ~k)
      ~requirement:"hypercube needs n = 2^k"
      (fun ~n:_ ~k ~seed:_ -> Hypercube.make ~dim:k);
    plain_entry "expander" "random k-regular expander"
      ~admissible:(fun ~n ~k -> k mod 2 = 0 && k >= 2 && n > k)
      ~requirement:"expander needs even k >= 2 and n > k"
      (fun ~n ~k ~seed -> Expander.random_regular (Graph_core.Prng.create ~seed) ~n ~degree:k);
    {
      name = "random_regular";
      doc = "random k-regular graph (configuration model)";
      admissible = (fun ~n ~k -> Random_regular.admissible ~n ~k);
      requirement = "random_regular needs 2 <= k < n with n*k even";
      build =
        (fun ~n ~k ~seed ->
          if Random_regular.admissible ~n ~k then
            Random_regular.make (Graph_core.Prng.create ~seed) ~n ~k
          else Error "random_regular needs 2 <= k < n with n*k even");
      build_csr = None;
      construction = None;
    };
    plain_entry "cycle" "simple cycle (k ignored)"
      ~admissible:(fun ~n ~k:_ -> n >= 3)
      ~requirement:"cycle needs n >= 3"
      (fun ~n ~k:_ ~seed:_ -> Graph_core.Generators.cycle n);
    plain_entry "complete" "complete graph (k ignored)"
      ~admissible:(fun ~n:_ ~k:_ -> true)
      ~requirement:""
      (fun ~n ~k:_ ~seed:_ -> Graph_core.Generators.complete n);
  ]

let () =
  let ns = List.map (fun e -> e.name) all in
  if List.length (List.sort_uniq compare ns) <> List.length ns then
    invalid_arg "Topo.Registry: duplicate entry names"

let names = List.map (fun e -> e.name) all

let find name = List.find_opt (fun e -> e.name = name) all

let build_graph ~kind ~n ~k ~seed =
  match find kind with
  | None ->
      Error
        (Printf.sprintf "unknown kind %S (expected one of: %s)" kind (String.concat ", " names))
  | Some e -> e.build ~n ~k ~seed

let build_csr_graph ?(big = false) ~kind ~n ~k ~seed () =
  match find kind with
  | None ->
      Error
        (Printf.sprintf "unknown kind %S (expected one of: %s)" kind (String.concat ", " names))
  | Some { build_csr = Some f; _ } -> f ~big ~n ~k ~seed
  | Some e -> Result.map (Csr.of_graph ~big) (e.build ~n ~k ~seed)

let witness ~kind ~n ~k =
  match find kind with
  | None | Some { construction = None; _ } -> None
  | Some { construction = Some c; _ } -> (
      match Build.build c ~n ~k with Ok b -> Some b | Error _ -> None)
