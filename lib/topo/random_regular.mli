(** Random k-regular graphs by the configuration (pairing) model.

    The competitor topology for the sustained-traffic comparison: the
    paper's LHG constructions against the uniform random k-regular
    baseline (the Kim–Srikant style comparison point). [n*k] half-edge
    stubs are matched into edges by drawing random stub pairs and
    re-drawing just the pairs that would form a self-loop or duplicate
    edge (Steger–Wormald style — the whole-matching restart sampler
    has success probability ~[exp((1-k^2)/4)] per attempt and dies at
    moderate [k]); an attempt is abandoned and resampled only when the
    leftover stubs admit no valid pair or the result is disconnected,
    both rare.

    Distinct from {!Expander.random_regular}: that one unions [k/2]
    random Hamiltonian cycles (always 2-connected, even [k] only);
    this one is the unstructured pairing model and admits odd [k]
    whenever [n*k] is even. *)

val admissible : n:int -> k:int -> bool
(** [2 <= k < n] and [n*k] even. *)

val default_attempts : int

val make :
  ?attempts:int ->
  Graph_core.Prng.t ->
  n:int ->
  k:int ->
  (Graph_core.Graph.t, string) result
(** Sample until simple and connected, at most [?attempts] (default
    {!default_attempts}) resamples; [Error] reports exhaustion.
    Deterministic in the rng state.
    @raise Invalid_argument when not {!admissible}. *)
