(** The topology catalogue: every graph family the CLI and experiment
    drivers can name, behind one record type.

    Each entry bundles the admissibility predicate, the builder and (for
    the witnessed LHG constructions) the {!Lhg_core.Build.construction}
    it dispatches to, so front ends match on data instead of duplicating
    string-dispatch tables. *)

type entry = {
  name : string;
  doc : string;  (** one line, for listings and [--help] *)
  admissible : n:int -> k:int -> bool;
      (** Whether the family has a member at these parameters. *)
  requirement : string;  (** human-readable admissibility rule *)
  build : n:int -> k:int -> seed:int -> (Graph_core.Graph.t, string) result;
      (** [seed] only matters for randomised families (expander). *)
  csr : big:bool -> n:int -> k:int -> seed:int -> (Graph_core.Csr.t, string) result;
      (** CSR builder — total on every entry. Families whose edges are
          pure arithmetic (the LHG constructions, cycle, complete,
          hypercube) realise straight into CSR; the rest go through
          [build] and freeze. Callers never need to case-split again. *)
  direct_csr : bool;
      (** Whether [csr] avoids the adjacency-set intermediate — the
          entries safe to take to off-heap scale ([~big:true]). *)
  construction : Lhg_core.Build.construction option;
      (** The LHG construction behind this entry, when there is one —
          gateway to witnesses, routes and shape inspection. *)
}

val all : entry list
(** In presentation order; names are unique. *)

val names : string list

val find : string -> entry option

val build_graph :
  kind:string -> n:int -> k:int -> seed:int -> (Graph_core.Graph.t, string) result
(** Look up and build in one step. Unknown kinds report the known names;
    inadmissible parameters report the entry's requirement. *)

val build_csr_graph :
  ?big:bool ->
  kind:string ->
  n:int ->
  k:int ->
  seed:int ->
  unit ->
  (Graph_core.Csr.t, string) result
(** Look up and build a CSR snapshot in one step via the entry's [csr]
    field. [~big] (default false) selects off-heap Bigarray
    adjacency. *)

val witness : kind:string -> n:int -> k:int -> Lhg_core.Build.t option
(** The structural witness, for entries backed by an LHG construction
    that succeeds at (n, k); [None] otherwise. *)
