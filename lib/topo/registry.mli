(** The topology catalogue: every graph family the CLI and experiment
    drivers can name, behind one record type.

    Each entry bundles the admissibility predicate, the builder and (for
    the witnessed LHG constructions) the {!Lhg_core.Build.construction}
    it dispatches to, so front ends match on data instead of duplicating
    string-dispatch tables. *)

type entry = {
  name : string;
  doc : string;  (** one line, for listings and [--help] *)
  admissible : n:int -> k:int -> bool;
      (** Whether the family has a member at these parameters. *)
  requirement : string;  (** human-readable admissibility rule *)
  build : n:int -> k:int -> seed:int -> (Graph_core.Graph.t, string) result;
      (** [seed] only matters for randomised families (expander). *)
  build_csr :
    (big:bool -> n:int -> k:int -> seed:int -> (Graph_core.Csr.t, string) result) option;
      (** Direct-to-CSR builder ({!Lhg_core.Build.build_csr}) for
          entries that can realise without an adjacency-set graph —
          the LHG constructions. [None] means go through [build] and
          freeze (what {!build_csr_graph} does for you). *)
  construction : Lhg_core.Build.construction option;
      (** The LHG construction behind this entry, when there is one —
          gateway to witnesses, routes and shape inspection. *)
}

val all : entry list
(** In presentation order; names are unique. *)

val names : string list

val find : string -> entry option

val build_graph :
  kind:string -> n:int -> k:int -> seed:int -> (Graph_core.Graph.t, string) result
(** Look up and build in one step. Unknown kinds report the known names;
    inadmissible parameters report the entry's requirement. *)

val build_csr_graph :
  ?big:bool ->
  kind:string ->
  n:int ->
  k:int ->
  seed:int ->
  unit ->
  (Graph_core.Csr.t, string) result
(** Look up and build a CSR snapshot in one step: the entry's direct
    [build_csr] when it has one, otherwise [build] followed by
    [Csr.of_graph]. [~big] (default false) selects off-heap Bigarray
    adjacency. *)

val witness : kind:string -> n:int -> k:int -> Lhg_core.Build.t option
(** The structural witness, for entries backed by an LHG construction
    that succeeds at (n, k); [None] otherwise. *)
