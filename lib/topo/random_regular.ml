module Graph = Graph_core.Graph
module Prng = Graph_core.Prng

(* Configuration (pairing) model: n*k half-edge stubs matched uniformly
   at random, resampled until the multigraph comes out simple and
   connected. Distinct from Expander.random_regular (a union of k/2
   Hamiltonian cycles, which is 2-connected by construction and only
   exists for even k): the pairing model is the uniform-ish k-regular
   baseline the random-graph literature compares against, and it covers
   odd k whenever n*k is even. *)

let admissible ~n ~k = k >= 2 && k < n && (n * k) mod 2 = 0

(* One pairing attempt, Steger–Wormald style: draw stub pairs and
   reject self-loops and duplicate edges pair-by-pair (re-drawing just
   the offending pair) instead of restarting the whole matching — the
   naive restart-on-any-collision sampler succeeds with probability
   ~exp((1-k^2)/4) per attempt, which is hopeless already at k = 5.
   The attempt fails only when the leftover stubs admit no valid pair
   (rare), detected by a re-draw budget. *)
let attempt rng ~n ~k =
  let g = Graph.create ~n in
  let stubs = Array.init (n * k) (fun i -> i / k) in
  let len = ref (n * k) in
  let swap_remove i =
    decr len;
    stubs.(i) <- stubs.(!len)
  in
  let rejects = ref 0 in
  let budget = 50 * n * k in
  let stuck = ref false in
  while !len > 0 && not !stuck do
    let i = Prng.int rng !len in
    let j = Prng.int rng !len in
    let u = stubs.(i) and v = stubs.(j) in
    if i <> j && u <> v && not (Graph.has_edge g u v) then begin
      Graph.add_edge g u v;
      (* higher index first so the lower one stays in place *)
      swap_remove (max i j);
      swap_remove (min i j)
    end
    else begin
      incr rejects;
      if !rejects > budget then stuck := true
    end
  done;
  if (not !stuck) && Graph_core.Components.is_connected g then Some g else None

let default_attempts = 200

let make ?(attempts = default_attempts) rng ~n ~k =
  if not (admissible ~n ~k) then
    invalid_arg "Random_regular.make: need 2 <= k < n with n*k even";
  let rec go i =
    if i >= attempts then
      Error
        (Printf.sprintf
           "random_regular: no simple connected pairing found in %d attempts (n=%d, k=%d)"
           attempts n k)
    else match attempt rng ~n ~k with Some g -> Ok g | None -> go (i + 1)
  in
  go 0
