(* Versioned JSON stream documents — the shared emitter behind
   lhg-chaos/1, lhg-reconfig/1 and lhg-traffic/1. One writer, one
   formatting discipline: pretty-printed two-space indent, every field
   on its own line with a '": "' separator, floats through Export.fl
   (%g, non-finite mapped to 0) so documents are byte-deterministic for
   a given sequence of writes. *)

type t = {
  buf : Buffer.t;
  mutable depth : int;
  mutable firsts : bool list;  (** head = "no field written yet at the current level" *)
}

let indent t =
  for _ = 1 to t.depth do
    Buffer.add_string t.buf "  "
  done

(* comma-separate from the previous entry at this level, then indent *)
let next_entry t =
  (match t.firsts with
  | true :: rest -> t.firsts <- false :: rest
  | false :: _ -> Buffer.add_char t.buf ','
  | [] -> invalid_arg "Obs.Stream: document already closed");
  Buffer.add_char t.buf '\n';
  indent t

let key t k =
  next_entry t;
  Buffer.add_char t.buf '"';
  Buffer.add_string t.buf (Export.escape k);
  Buffer.add_string t.buf "\": "

let open_level t opening =
  Buffer.add_string t.buf opening;
  t.depth <- t.depth + 1;
  t.firsts <- true :: t.firsts

let close_level t closing =
  (match t.firsts with
  | [] -> invalid_arg "Obs.Stream: document already closed"
  | first :: rest ->
      t.depth <- t.depth - 1;
      if not first then begin
        Buffer.add_char t.buf '\n';
        indent t
      end;
      t.firsts <- rest);
  Buffer.add_string t.buf closing

let schema_key = "schema"

let create ~schema () =
  let t = { buf = Buffer.create 1024; depth = 0; firsts = [] } in
  open_level t "{";
  key t schema_key;
  Buffer.add_char t.buf '"';
  Buffer.add_string t.buf (Export.escape schema);
  Buffer.add_char t.buf '"';
  t

let raw t k v =
  key t k;
  Buffer.add_string t.buf v

let str t k v = raw t k ("\"" ^ Export.escape v ^ "\"")

let int t k v = raw t k (string_of_int v)

let float t k v = raw t k (Export.fl v)

let bool t k v = raw t k (string_of_bool v)

let null t k = raw t k "null"

let ints t k vs =
  (* compact one-line int array — member lists, victim sets, per-round
     counters; the shape every stream used to hand-assemble via [raw] *)
  let b = Buffer.create 32 in
  Buffer.add_char b '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (string_of_int v))
    vs;
  Buffer.add_char b ']';
  raw t k (Buffer.contents b)

let obj t k f =
  key t k;
  open_level t "{";
  f t;
  close_level t "}"

let arr t k f =
  key t k;
  open_level t "[";
  f t;
  close_level t "]"

let element t f =
  next_entry t;
  open_level t "{";
  f t;
  close_level t "}"

let element_raw t v =
  next_entry t;
  Buffer.add_string t.buf v

let summary t f = obj t "summary" f

let embed t k child =
  (* splice a finished child document as the value of [k], re-indented
     to the current level *)
  key t k;
  let s = child in
  String.iteri
    (fun i c ->
      Buffer.add_char t.buf c;
      if c = '\n' && i < String.length s - 1 then indent t)
    s

let contents t =
  match t.firsts with
  | [ _ ] ->
      close_level t "}";
      Buffer.add_char t.buf '\n';
      Buffer.contents t.buf
  | [] -> Buffer.contents t.buf
  | _ -> invalid_arg "Obs.Stream.contents: unclosed nested object"
