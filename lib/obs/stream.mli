(** Versioned JSON stream documents.

    The repo's machine-readable outputs are versioned JSON documents —
    [lhg-chaos/1], [lhg-reconfig/1], [lhg-traffic/1] — that used to be
    hand-assembled with [Printf] in three different places, each
    re-deciding commas, indentation and float formatting. This writer
    is the one shared discipline: a document opens with its ["schema"]
    field, fields and nested objects/arrays are appended in call order,
    and {!contents} closes the root.

    Formatting contract (what downstream byte-comparisons rely on):
    two-space indentation per nesting level, one field per line,
    [": "] between key and value, floats printed with [%g] and
    non-finite values mapped to [0] ({!Export.fl}), strings escaped
    with {!Export.escape}. Writing the same sequence of values always
    yields the same bytes — determinism checks across [--jobs] and
    engines compare entire documents verbatim.

    The writer is append-only state, not a JSON AST: invalid sequences
    (a field after {!contents}, unbalanced nesting) raise
    [Invalid_argument] rather than producing broken output. *)

type t

val create : schema:string -> unit -> t
(** Open a document: [{"schema": "<schema>"] — every stream names its
    schema and version first. *)

val str : t -> string -> string -> unit

val int : t -> string -> int -> unit

val float : t -> string -> float -> unit
(** Printed with [%g]; NaN/infinities become [0]. *)

val bool : t -> string -> bool -> unit

val null : t -> string -> unit

val ints : t -> string -> int list -> unit
(** A compact one-line JSON array of ints ([[1, 2, 3]]) — the member
    lists and victim sets that every stream used to hand-render through
    {!raw}. *)

val raw : t -> string -> string -> unit
(** A pre-rendered JSON value (the escape hatch for lists of scalars
    and other shapes the typed writers don't cover). *)

val obj : t -> string -> (t -> unit) -> unit
(** [obj t k f]: a nested object under key [k], populated by [f]. *)

val arr : t -> string -> (t -> unit) -> unit
(** A nested array under key [k]; populate with {!element} /
    {!element_raw}. *)

val element : t -> (t -> unit) -> unit
(** An object element of the enclosing array. *)

val element_raw : t -> string -> unit
(** A pre-rendered scalar element of the enclosing array. *)

val summary : t -> (t -> unit) -> unit
(** The conventional trailing ["summary"] block: [summary t f] =
    [obj t "summary" f]. Every versioned stream ends with one so
    dashboards can read a document's verdict without walking its
    body. *)

val embed : t -> string -> string -> unit
(** [embed t k doc] splices a finished child document (e.g. a per-epoch
    {!contents}) as the value of [k], re-indented to the current
    level. *)

val contents : t -> string
(** Close the root object and return the document (trailing newline
    included). The stream must be back at the root level.
    @raise Invalid_argument on unbalanced nesting. *)
