(** Per-run metrics registry: counters, gauges, fixed-bucket histograms
    and span-style protocol events.

    One registry accompanies one simulation run (or one experiment
    aggregating several runs). Instrumented modules register named
    metrics at setup time and record into them on the hot path; the
    exporters ({!Export}) turn the registry into a JSON or text
    document afterwards.

    {2 Cost model}

    Recording is O(1) and allocation-free: counters mutate an int
    field, gauges and histogram sums write into pre-allocated float
    arrays (avoiding boxed-float stores), histogram bucket selection is
    a binary search over the fixed bounds, and span events write into a
    pre-allocated struct-of-arrays ring buffer. On a disabled registry
    ({!nil}, or [create ~enabled:false]) registration hands back
    detached dummy metrics and {!event} returns after one branch, so an
    uninstrumented run pays a few stray stores and nothing else —
    instrumented code never needs [match] arms around its recording
    calls. Registration itself (name lookup) allocates and is meant for
    run setup, not for inner loops. *)

type t

val create : ?enabled:bool -> ?event_capacity:int -> unit -> t
(** Fresh registry; [enabled] defaults to [true]. [event_capacity]
    (default 65536) bounds the span-event ring buffer; older events are
    evicted silently and counted in {!events_dropped}. *)

val nil : t
(** The shared disabled registry. Passing it to instrumented code turns
    all recording into no-ops without any [option] plumbing. *)

val enabled : t -> bool

val set_clock : t -> (unit -> float) -> unit
(** Install the virtual-time clock used to stamp span events —
    {!Netsim.Sim.create} points it at the simulation clock so protocol
    events and wire-level {!Netsim.Trace} events share one timeline.
    No-op on a disabled registry. *)

val now : t -> float
(** Current reading of the installed clock (0.0 before {!set_clock}). *)

(** {1 Counters} — monotonically increasing integers. *)

type counter

val counter : t -> string -> counter
(** Register (or look up) the counter named [name]. Returning the same
    value for the same name lets several runs publish into one registry
    cumulatively.
    @raise Invalid_argument if the name is registered as another type. *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

val counter_name : counter -> string

(** {1 Gauges} — last-write-wins floats. *)

type gauge

val gauge : t -> string -> gauge

val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keep the running maximum of all values recorded so far. *)

val gauge_value : gauge -> float

val gauge_name : gauge -> string

(** {1 Histograms} — fixed upper-bound buckets plus an overflow bucket. *)

type histogram

val histogram : t -> string -> bounds:float array -> histogram
(** Register (or look up) a histogram with the given strictly increasing
    finite upper bounds. The registry keeps a reference to [bounds] —
    callers must not mutate it; use the shared constants below for hot
    call sites so no per-call array is built.
    @raise Invalid_argument on empty, non-increasing or non-finite
    bounds, or if [name] exists with a different bucket count. *)

val observe : histogram -> float -> unit

val histogram_count : histogram -> int
(** Number of observations. *)

val histogram_sum : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h q] for q ∈ \[0,1\]: the smallest bucket upper bound
    such that at least ⌈q·count⌉ observations fall at or below it.
    Observations beyond the last bound report the last bound (the
    overflow bucket has no finite upper edge). 0.0 on an empty
    histogram.
    @raise Invalid_argument if q is outside \[0,1\]. *)

val histogram_name : histogram -> string

val histogram_bounds : histogram -> float array
(** The upper bounds (do not mutate). *)

val histogram_counts : histogram -> int array
(** Per-bucket counts, length [bounds + 1] (last = overflow); a copy. *)

val linear_bounds : lo:float -> step:float -> count:int -> float array
(** [lo, lo+step, …] — [count] bounds. *)

val exponential_bounds : lo:float -> factor:float -> count:int -> float array
(** [lo, lo·factor, …] — [count] bounds; [factor > 1]. *)

val hop_bounds : float array
(** 0, 1, …, 63 — hop counts and round numbers. *)

val time_bounds : float array
(** 1, 2, 4, …, 2²³ — virtual-time latencies and completion times. *)

val depth_bounds : float array
(** 0, 1, …, 31 — receiver queue depths. *)

(** {1 Span events} — timestamped protocol-level happenings, layered
    over the wire-level {!Netsim.Trace}. *)

type span_kind =
  | Round_start
  | Round_end
  | Retransmit  (** an anti-entropy repair resend *)
  | Crash
  | Recover  (** a crashed node coming back up *)
  | Link_down
  | Link_up  (** a failed link restored *)
  | Loss_rate  (** the network loss rate changed; [info] is the new rate in ppm *)
  | Churn_join
  | Churn_leave
  | Epoch_start  (** a reconfiguration epoch opened; [info] is the epoch index *)
  | Epoch_end  (** the epoch committed; [info] is the chosen diff cost *)

val span_kind_name : span_kind -> string

val all_span_kinds : span_kind list

val event : t -> span_kind -> node:int -> info:int -> unit
(** Record one event stamped with the registry clock. [node] is the
    subject vertex (or a protocol-defined scalar), [info] a free
    per-kind payload (round number, payload id, peer vertex, edge
    delta…). No-op when disabled. *)

val event_at : t -> at:float -> span_kind -> node:int -> info:int -> unit
(** As {!event} with an explicit timestamp — for modules that replay or
    post-process a run (e.g. round reconstruction) rather than record
    live. *)

type event_view = { at : float; kind : span_kind; node : int; info : int }

val events : t -> event_view list
(** Retained events, oldest first. *)

val events_recorded : t -> int
(** Total events ever recorded (evicted ones included). *)

val events_dropped : t -> int
(** Events evicted by the ring buffer. *)

val event_kind_count : t -> span_kind -> int
(** Per-kind totals; eviction-proof (kept outside the ring). *)

(** {1 Introspection} — used by the exporters. *)

val counters : t -> counter list
(** In registration order; likewise below. *)

val gauges : t -> gauge list

val histograms : t -> histogram list

val find_histogram : t -> string -> histogram option

val merge : t -> t -> unit
(** [merge dst src] folds [src]'s recordings into [dst] — the export
    step of per-domain registries: give each domain of a parallel run
    its own registry (recording stays unsynchronised and
    allocation-free), then merge them into one for {!Export}.

    Semantics per metric (matched by name): counters add; histograms
    add pointwise (the bounds must be identical — bucket count {e and}
    values); gauges keep the maximum of the two readings (the only
    order-independent combination available for last-write-wins cells —
    re-[set] summary gauges after merging if max is not the intent).
    [src]'s span events are re-recorded into [dst] with their original
    timestamps, subject to [dst]'s ring capacity; eviction-proof
    per-kind totals add. [src] is unchanged. No-op when either registry
    is disabled or both are the same registry.
    @raise Invalid_argument on a name registered with another metric
    type or a histogram with different bounds. *)

val clear : t -> unit
(** Reset every value, count and event while keeping registrations —
    reuse one registry across runs without re-plumbing metrics. *)
