(** Registry exporters.

    Snapshot a {!Registry} into a self-contained document: JSON for
    machines (the `lhg-obs/1` schema — what [lhg_tool flood --metrics
    json] and [bench_json.exe] emit), aligned text for humans. Both
    walk the registry in registration order, so diffs between two runs
    line up. *)

val escape : string -> string
(** JSON string-body escaping (backslash, quote, control chars). *)

val fl : float -> string
(** Float formatting for every JSON surface: [%g], with non-finite
    values clamped to ["0"] so the output always parses. *)

val to_json : ?recent_events:int -> Registry.t -> string
(** The registry as one JSON document. Histograms carry their bounds,
    per-bucket counts, count, sum, mean and p50/p95/p99; the events
    section carries totals, per-kind counts and up to [recent_events]
    (default 0) most recent events. Floats are emitted with [%g] and
    non-finite values clamped to 0, so the output always parses. *)

val to_text : ?recent_events:int -> Registry.t -> string
(** Human-readable rendering of the same snapshot. *)
