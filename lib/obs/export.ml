let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
          Buffer.add_char b '\\';
          Buffer.add_char b c
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %g never prints a NaN/inf into the document *)
let fl f = if Float.is_finite f then Printf.sprintf "%g" f else "0"

let last_events r n =
  if n <= 0 then []
  else
    let evs = Registry.events r in
    let len = List.length evs in
    if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs

let to_json ?(recent_events = 0) r =
  let b = Buffer.create 4096 in
  let add = Buffer.add_string b in
  let obj_of fmt items =
    List.iteri (fun i x -> add (fmt x (i = List.length items - 1))) items
  in
  add "{\n  \"schema\": \"lhg-obs/1\",\n";
  add (Printf.sprintf "  \"enabled\": %b,\n" (Registry.enabled r));
  add (Printf.sprintf "  \"virtual_time\": %s,\n" (fl (Registry.now r)));
  add "  \"counters\": {\n";
  obj_of
    (fun c last ->
      Printf.sprintf "    \"%s\": %d%s\n" (escape (Registry.counter_name c))
        (Registry.counter_value c)
        (if last then "" else ","))
    (Registry.counters r);
  add "  },\n  \"gauges\": {\n";
  obj_of
    (fun g last ->
      Printf.sprintf "    \"%s\": %s%s\n" (escape (Registry.gauge_name g))
        (fl (Registry.gauge_value g))
        (if last then "" else ","))
    (Registry.gauges r);
  add "  },\n  \"histograms\": {\n";
  obj_of
    (fun h last ->
      let count = Registry.histogram_count h in
      let sum = Registry.histogram_sum h in
      let mean = if count = 0 then 0.0 else sum /. float_of_int count in
      let bounds =
        Registry.histogram_bounds h |> Array.to_list |> List.map fl |> String.concat ", "
      in
      let counts =
        Registry.histogram_counts h |> Array.to_list |> List.map string_of_int
        |> String.concat ", "
      in
      Printf.sprintf
        "    \"%s\": {\n\
        \      \"count\": %d,\n\
        \      \"sum\": %s,\n\
        \      \"mean\": %s,\n\
        \      \"p50\": %s,\n\
        \      \"p95\": %s,\n\
        \      \"p99\": %s,\n\
        \      \"bounds\": [%s],\n\
        \      \"bucket_counts\": [%s]\n\
        \    }%s\n"
        (escape (Registry.histogram_name h))
        count (fl sum) (fl mean)
        (fl (Registry.percentile h 0.50))
        (fl (Registry.percentile h 0.95))
        (fl (Registry.percentile h 0.99))
        bounds counts
        (if last then "" else ","))
    (Registry.histograms r);
  add "  },\n  \"events\": {\n";
  add (Printf.sprintf "    \"recorded\": %d,\n" (Registry.events_recorded r));
  add (Printf.sprintf "    \"dropped\": %d,\n" (Registry.events_dropped r));
  add "    \"by_kind\": {\n";
  obj_of
    (fun k last ->
      Printf.sprintf "      \"%s\": %d%s\n" (Registry.span_kind_name k)
        (Registry.event_kind_count r k)
        (if last then "" else ","))
    Registry.all_span_kinds;
  add "    },\n    \"recent\": [\n";
  obj_of
    (fun (e : Registry.event_view) last ->
      Printf.sprintf "      { \"at\": %s, \"kind\": \"%s\", \"node\": %d, \"info\": %d }%s\n"
        (fl e.Registry.at)
        (Registry.span_kind_name e.Registry.kind)
        e.Registry.node e.Registry.info
        (if last then "" else ","))
    (last_events r recent_events);
  add "    ]\n  }\n}\n";
  Buffer.contents b

let to_text ?(recent_events = 0) r =
  let b = Buffer.create 2048 in
  let add = Buffer.add_string b in
  if not (Registry.enabled r) then add "metrics: disabled registry\n"
  else begin
    add (Printf.sprintf "metrics @ virtual time %s\n" (fl (Registry.now r)));
    (match Registry.counters r with
    | [] -> ()
    | cs ->
        add "counters:\n";
        List.iter
          (fun c ->
            add (Printf.sprintf "  %-32s %d\n" (Registry.counter_name c) (Registry.counter_value c)))
          cs);
    (match Registry.gauges r with
    | [] -> ()
    | gs ->
        add "gauges:\n";
        List.iter
          (fun g ->
            add
              (Printf.sprintf "  %-32s %s\n" (Registry.gauge_name g) (fl (Registry.gauge_value g))))
          gs);
    (match Registry.histograms r with
    | [] -> ()
    | hs ->
        add "histograms:\n";
        List.iter
          (fun h ->
            let count = Registry.histogram_count h in
            let mean =
              if count = 0 then 0.0 else Registry.histogram_sum h /. float_of_int count
            in
            add
              (Printf.sprintf "  %-32s count=%d mean=%s p50=%s p95=%s p99=%s\n"
                 (Registry.histogram_name h) count (fl mean)
                 (fl (Registry.percentile h 0.50))
                 (fl (Registry.percentile h 0.95))
                 (fl (Registry.percentile h 0.99))))
          hs);
    add
      (Printf.sprintf "events: recorded=%d dropped=%d\n" (Registry.events_recorded r)
         (Registry.events_dropped r));
    List.iter
      (fun k ->
        let c = Registry.event_kind_count r k in
        if c > 0 then add (Printf.sprintf "  %-32s %d\n" (Registry.span_kind_name k) c))
      Registry.all_span_kinds;
    List.iter
      (fun (e : Registry.event_view) ->
        add
          (Printf.sprintf "  [%s] %s node=%d info=%d\n" (fl e.Registry.at)
             (Registry.span_kind_name e.Registry.kind)
             e.Registry.node e.Registry.info))
      (last_events r recent_events)
  end;
  Buffer.contents b
