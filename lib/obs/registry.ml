type counter = { c_name : string; mutable c_value : int }

(* Gauges and histogram sums live in one-element float arrays: storing
   into a flat float array is an unboxed write, whereas a mutable float
   field of a mixed record would allocate a box per store. *)
type gauge = { g_name : string; g_cell : float array }

type histogram = {
  h_name : string;
  h_bounds : float array;
  h_counts : int array;  (** length = bounds + 1; last bucket = overflow *)
  h_sum : float array;  (** one element *)
  mutable h_total : int;
}

type span_kind =
  | Round_start
  | Round_end
  | Retransmit
  | Crash
  | Recover
  | Link_down
  | Link_up
  | Loss_rate
  | Churn_join
  | Churn_leave
  | Epoch_start
  | Epoch_end

let span_kind_index = function
  | Round_start -> 0
  | Round_end -> 1
  | Retransmit -> 2
  | Crash -> 3
  | Recover -> 4
  | Link_down -> 5
  | Link_up -> 6
  | Loss_rate -> 7
  | Churn_join -> 8
  | Churn_leave -> 9
  | Epoch_start -> 10
  | Epoch_end -> 11

let all_span_kinds =
  [
    Round_start;
    Round_end;
    Retransmit;
    Crash;
    Recover;
    Link_down;
    Link_up;
    Loss_rate;
    Churn_join;
    Churn_leave;
    Epoch_start;
    Epoch_end;
  ]

let span_kind_count = List.length all_span_kinds

let span_kind_name = function
  | Round_start -> "round-start"
  | Round_end -> "round-end"
  | Retransmit -> "retransmit"
  | Crash -> "crash"
  | Recover -> "recover"
  | Link_down -> "link-down"
  | Link_up -> "link-up"
  | Loss_rate -> "loss-rate"
  | Churn_join -> "churn-join"
  | Churn_leave -> "churn-leave"
  | Epoch_start -> "epoch-start"
  | Epoch_end -> "epoch-end"

type metric = M_counter of counter | M_gauge of gauge | M_histogram of histogram

type t = {
  enabled : bool;
  mutable clock : unit -> float;
  by_name : (string, metric) Hashtbl.t;
  mutable rev_counters : counter list;
  mutable rev_gauges : gauge list;
  mutable rev_histograms : histogram list;
  (* span-event ring, struct of arrays: recording never allocates *)
  ev_time : float array;
  ev_kind : int array;
  ev_node : int array;
  ev_info : int array;
  mutable ev_next : int;  (** total events ever recorded *)
  kind_counts : int array;  (** per-kind totals, eviction-proof *)
}

let create ?(enabled = true) ?(event_capacity = 65_536) () =
  if event_capacity <= 0 then invalid_arg "Registry.create: event_capacity must be positive";
  {
    enabled;
    clock = (fun () -> 0.0);
    by_name = Hashtbl.create 32;
    rev_counters = [];
    rev_gauges = [];
    rev_histograms = [];
    ev_time = Array.make event_capacity 0.0;
    ev_kind = Array.make event_capacity 0;
    ev_node = Array.make event_capacity 0;
    ev_info = Array.make event_capacity 0;
    ev_next = 0;
    kind_counts = Array.make span_kind_count 0;
  }

let nil = create ~enabled:false ~event_capacity:1 ()

let enabled t = t.enabled

let set_clock t f = if t.enabled then t.clock <- f

let now t = t.clock ()

let type_clash name = invalid_arg ("Registry: " ^ name ^ " is registered with another metric type")

(* counters *)

let counter t name =
  if not t.enabled then { c_name = name; c_value = 0 }
  else
    match Hashtbl.find_opt t.by_name name with
    | Some (M_counter c) -> c
    | Some _ -> type_clash name
    | None ->
        let c = { c_name = name; c_value = 0 } in
        Hashtbl.add t.by_name name (M_counter c);
        t.rev_counters <- c :: t.rev_counters;
        c

let incr c = c.c_value <- c.c_value + 1

let add c n = c.c_value <- c.c_value + n

let counter_value c = c.c_value

let counter_name c = c.c_name

(* gauges *)

let gauge t name =
  if not t.enabled then { g_name = name; g_cell = [| 0.0 |] }
  else
    match Hashtbl.find_opt t.by_name name with
    | Some (M_gauge g) -> g
    | Some _ -> type_clash name
    | None ->
        let g = { g_name = name; g_cell = [| 0.0 |] } in
        Hashtbl.add t.by_name name (M_gauge g);
        t.rev_gauges <- g :: t.rev_gauges;
        g

let set g v = g.g_cell.(0) <- v

let set_max g v = if v > g.g_cell.(0) then g.g_cell.(0) <- v

let gauge_value g = g.g_cell.(0)

let gauge_name g = g.g_name

(* histograms *)

let check_bounds bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Registry.histogram: empty bounds";
  for i = 0 to n - 1 do
    if not (Float.is_finite bounds.(i)) then invalid_arg "Registry.histogram: non-finite bound";
    if i > 0 && bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Registry.histogram: bounds must be strictly increasing"
  done

let make_histogram name bounds =
  {
    h_name = name;
    h_bounds = bounds;
    h_counts = Array.make (Array.length bounds + 1) 0;
    h_sum = [| 0.0 |];
    h_total = 0;
  }

let histogram t name ~bounds =
  check_bounds bounds;
  if not t.enabled then make_histogram name bounds
  else
    match Hashtbl.find_opt t.by_name name with
    | Some (M_histogram h) ->
        if Array.length h.h_bounds <> Array.length bounds then
          invalid_arg ("Registry.histogram: " ^ name ^ " exists with a different bucket count");
        h
    | Some _ -> type_clash name
    | None ->
        let h = make_histogram name bounds in
        Hashtbl.add t.by_name name (M_histogram h);
        t.rev_histograms <- h :: t.rev_histograms;
        h

let observe h v =
  let b = h.h_bounds in
  let n = Array.length b in
  let idx =
    if v <= b.(0) then 0
    else if v > b.(n - 1) then n
    else begin
      (* smallest i with v <= b.(i) *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi > !lo do
        let mid = (!lo + !hi) / 2 in
        if v <= b.(mid) then hi := mid else lo := mid + 1
      done;
      !hi
    end
  in
  h.h_counts.(idx) <- h.h_counts.(idx) + 1;
  h.h_sum.(0) <- h.h_sum.(0) +. v;
  h.h_total <- h.h_total + 1

let histogram_count h = h.h_total

let histogram_sum h = h.h_sum.(0)

let percentile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Registry.percentile: q outside [0,1]";
  if h.h_total = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.h_total))) in
    let nb = Array.length h.h_bounds in
    let cum = ref 0 and found = ref (h.h_bounds.(nb - 1)) and looking = ref true in
    for i = 0 to nb - 1 do
      if !looking then begin
        cum := !cum + h.h_counts.(i);
        if !cum >= rank then begin
          found := h.h_bounds.(i);
          looking := false
        end
      end
    done;
    !found
  end

let histogram_name h = h.h_name

let histogram_bounds h = h.h_bounds

let histogram_counts h = Array.copy h.h_counts

let linear_bounds ~lo ~step ~count =
  if count <= 0 then invalid_arg "Registry.linear_bounds: count must be positive";
  if step <= 0.0 then invalid_arg "Registry.linear_bounds: step must be positive";
  Array.init count (fun i -> lo +. (step *. float_of_int i))

let exponential_bounds ~lo ~factor ~count =
  if count <= 0 then invalid_arg "Registry.exponential_bounds: count must be positive";
  if lo <= 0.0 then invalid_arg "Registry.exponential_bounds: lo must be positive";
  if factor <= 1.0 then invalid_arg "Registry.exponential_bounds: factor must exceed 1";
  let b = Array.make count lo in
  for i = 1 to count - 1 do
    b.(i) <- b.(i - 1) *. factor
  done;
  b

let hop_bounds = linear_bounds ~lo:0.0 ~step:1.0 ~count:64

let time_bounds = exponential_bounds ~lo:1.0 ~factor:2.0 ~count:24

let depth_bounds = linear_bounds ~lo:0.0 ~step:1.0 ~count:32

(* span events *)

type event_view = { at : float; kind : span_kind; node : int; info : int }

let event_at t ~at kind ~node ~info =
  if t.enabled then begin
    let ki = span_kind_index kind in
    let i = t.ev_next mod Array.length t.ev_time in
    t.ev_time.(i) <- at;
    t.ev_kind.(i) <- ki;
    t.ev_node.(i) <- node;
    t.ev_info.(i) <- info;
    t.ev_next <- t.ev_next + 1;
    t.kind_counts.(ki) <- t.kind_counts.(ki) + 1
  end

let event t kind ~node ~info = if t.enabled then event_at t ~at:(t.clock ()) kind ~node ~info

let kind_of_index i = List.nth all_span_kinds i

let events t =
  let cap = Array.length t.ev_time in
  let kept = min t.ev_next cap in
  let start = t.ev_next - kept in
  List.init kept (fun j ->
      let i = (start + j) mod cap in
      { at = t.ev_time.(i); kind = kind_of_index t.ev_kind.(i); node = t.ev_node.(i); info = t.ev_info.(i) })

let events_recorded t = t.ev_next

let events_dropped t = max 0 (t.ev_next - Array.length t.ev_time)

let event_kind_count t kind = t.kind_counts.(span_kind_index kind)

(* introspection *)

let counters t = List.rev t.rev_counters

let gauges t = List.rev t.rev_gauges

let histograms t = List.rev t.rev_histograms

let find_histogram t name =
  match Hashtbl.find_opt t.by_name name with Some (M_histogram h) -> Some h | _ -> None

let merge dst src =
  if dst.enabled && src.enabled && dst != src then begin
    List.iter (fun c -> add (counter dst c.c_name) c.c_value) (counters src);
    List.iter
      (fun g ->
        let d = gauge dst g.g_name in
        if g.g_cell.(0) > d.g_cell.(0) then d.g_cell.(0) <- g.g_cell.(0))
      (gauges src);
    List.iter
      (fun h ->
        (* [histogram] only checks bucket count; merging also needs the
           bound values themselves to line up. *)
        let d = histogram dst h.h_name ~bounds:h.h_bounds in
        if d.h_bounds != h.h_bounds && d.h_bounds <> h.h_bounds then
          invalid_arg ("Registry.merge: " ^ h.h_name ^ " exists with different bounds");
        for i = 0 to Array.length h.h_counts - 1 do
          d.h_counts.(i) <- d.h_counts.(i) + h.h_counts.(i)
        done;
        d.h_sum.(0) <- d.h_sum.(0) +. h.h_sum.(0);
        d.h_total <- d.h_total + h.h_total)
      (histograms src);
    (* Replay retained events (event_at also bumps the per-kind
       totals), then account for the events src's ring had already
       evicted so the eviction-proof totals still add up. *)
    let replayed = Array.make span_kind_count 0 in
    List.iter
      (fun e ->
        let ki = span_kind_index e.kind in
        replayed.(ki) <- replayed.(ki) + 1;
        event_at dst ~at:e.at e.kind ~node:e.node ~info:e.info)
      (events src);
    for ki = 0 to span_kind_count - 1 do
      dst.kind_counts.(ki) <- dst.kind_counts.(ki) + (src.kind_counts.(ki) - replayed.(ki))
    done
  end

let clear t =
  List.iter (fun c -> c.c_value <- 0) t.rev_counters;
  List.iter (fun g -> g.g_cell.(0) <- 0.0) t.rev_gauges;
  List.iter
    (fun h ->
      Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
      h.h_sum.(0) <- 0.0;
      h.h_total <- 0)
    t.rev_histograms;
  t.ev_next <- 0;
  Array.fill t.kind_counts 0 (Array.length t.kind_counts) 0
