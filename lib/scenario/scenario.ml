(* One churn-under-load experiment, described before it runs.

   A scenario is the composition the CLI subcommands each expose a
   third of: the Spec names the topology and runtime, the traffic
   sub-record the stream, the controller sub-record the churn. [run]
   welds them onto one simulated clock — the controller trace is
   pre-played to epochs (engine-independent by construction), the union
   of every epoch's edge set is frozen into a single CSR snapshot, the
   epochs are lowered to a Traffic.Reconfig timeline, and the driver
   streams through the reconfigurations. Everything downstream of the
   pre-play is the deterministic driver, so the lhg-scenario/1 document
   is byte-identical across engines and pool sizes. *)

module Spec = Spec
module Controller = Overlay.Controller
module Workload = Traffic.Workload
module Driver = Traffic.Driver
module Reconfig = Traffic.Reconfig
module Graph = Graph_core.Graph
module Csr = Graph_core.Csr

(* The traffic third: what the stream looks like and what it must
   achieve. One record per CLI flag group, shared between the
   standalone [traffic] subcommand and [scenario]. *)
type traffic = {
  workload : Workload.t;
  capacity : float option;  (** per-link service rate; [None] = infinite *)
  queue_cap : int option;
  queue_policy : Netsim.Network.queue_policy option;
  bands : int;  (** link priority bands; > 1 gives epoch commits a fast lane *)
  plan_file : string option;  (** chaos plan scheduled mid-stream *)
  min_delivery : float;  (** SLO floor on delivery fraction *)
  max_p95 : float;  (** SLO ceiling on p95 delay *)
}

let default_traffic =
  {
    workload = Workload.default;
    capacity = None;
    queue_cap = None;
    queue_policy = None;
    bands = 1;
    plan_file = None;
    min_delivery = 1.0;
    max_p95 = infinity;
  }

(* The controller third: the churn the overlay reconfigures under. *)
type controller = {
  steps : int;  (** length of the generated random trace *)
  trace_file : string option;  (** explicit request trace; wins over [steps] *)
  batch : int;  (** requests batched into one epoch *)
  join_probability : float option;
  chaos_adversary : string option;  (** per-epoch chaos audit generator *)
  chaos_plans_per_level : int;
  chaos_max_faults : int option;
  full_verify : bool;
}

let default_controller =
  {
    steps = 40;
    trace_file = None;
    batch = 8;
    join_probability = None;
    chaos_adversary = None;
    chaos_plans_per_level = 2;
    chaos_max_faults = None;
    full_verify = false;
  }

(* The chaos-audit flag group ([lhg_tool chaos]); not part of a
   scenario run (a scenario's chaos is a mid-stream plan on the
   traffic record) but decoded once here so the CLI has a single
   source of truth for the group. *)
type chaos_audit = {
  adversary : string;
  audit_plan_file : string option;
  source : int;  (** -1 = first vertex outside the adversary's targets *)
  max_faults : int option;  (** [None] = the connectivity degree k *)
  plans_per_level : int;
}

let default_chaos_audit =
  {
    adversary = "min-cut";
    audit_plan_file = None;
    source = -1;
    max_faults = None;
    plans_per_level = 3;
  }

type t = {
  spec : Spec.t;
  traffic : traffic;
  controller : controller;
  epoch_interval : float;  (** simulated time between epoch commits *)
}

let default =
  {
    spec = Spec.default;
    traffic = default_traffic;
    controller = default_controller;
    epoch_interval = 50.0;
  }

let family_of_topology = function
  | "ktree" -> Some Overlay.Membership.Ktree
  | "kdiamond" -> Some Overlay.Membership.Kdiamond
  | "jd" -> Some Overlay.Membership.Jd
  | "harary" -> Some Overlay.Membership.Harary_classic
  | _ -> None

let validate t =
  let ( let* ) = Result.bind in
  let* _ = Spec.validate t.spec in
  let* () =
    match family_of_topology t.spec.Spec.topology with
    | Some _ -> Ok ()
    | None -> Error "scenario supports kinds ktree, kdiamond, jd, harary"
  in
  let* () =
    if t.traffic.bands >= 1 && t.traffic.bands <= 4 then Ok ()
    else Error "--bands must be between 1 and 4"
  in
  let* () =
    if t.epoch_interval > 0.0 && Float.is_finite t.epoch_interval then Ok ()
    else Error "--epoch-interval must be a positive finite time"
  in
  let* () = if t.controller.batch >= 1 then Ok () else Error "--batch must be >= 1" in
  let* () = if t.controller.steps >= 0 then Ok () else Error "--steps must be >= 0" in
  Workload.validate t.traffic.workload ~n:t.spec.Spec.n

(* Lower committed controller epochs onto a traffic timeline: the union
   graph is every edge any epoch ever had (the one frozen CSR the
   stream runs on), [member0]/[absent0] describe t = 0, and each epoch
   becomes crash/recover + fail/restore flips at [interval * (index+1)].
   Membership is always a prefix 0..n-1 (Membership.leave retires the
   highest id), so a size change is a contiguous join/leave range. *)
let lower ~epoch_interval ~tree_count ~base epochs =
  let n0 = Graph.n base in
  let union_n =
    List.fold_left (fun a (e : Controller.epoch) -> max a e.Controller.n_after) n0 epochs
  in
  let union_g = Graph.create ~n:union_n in
  Graph.iter_edges base (fun u v -> Graph.add_edge union_g u v);
  let absent0 = ref [] in
  List.iter
    (fun (e : Controller.epoch) ->
      List.iter
        (fun (u, v) ->
          if not (Graph.has_edge union_g u v) then begin
            Graph.add_edge union_g u v;
            absent0 := (u, v) :: !absent0
          end)
        e.Controller.diff.Overlay.Diff.added)
    epochs;
  let repochs =
    List.map
      (fun (e : Controller.epoch) ->
        let joins =
          if e.Controller.n_after > e.Controller.n_before then
            List.init (e.Controller.n_after - e.Controller.n_before) (fun i ->
                e.Controller.n_before + i)
          else []
        in
        let leaves =
          if e.Controller.n_after < e.Controller.n_before then
            List.init (e.Controller.n_before - e.Controller.n_after) (fun i ->
                e.Controller.n_after + i)
          else []
        in
        {
          Reconfig.at = epoch_interval *. float_of_int (e.Controller.index + 1);
          index = e.Controller.index;
          joins;
          leaves;
          link_up = e.Controller.diff.Overlay.Diff.added;
          link_down = e.Controller.diff.Overlay.Diff.removed;
          repack = e.Controller.strategy = Controller.Rebuild;
        })
      epochs
  in
  ( union_g,
    {
      Reconfig.union_n;
      member0 = Array.init union_n (fun v -> v < n0);
      absent0 = List.rev !absent0;
      epochs = repochs;
      tree_count;
    } )

type outcome = {
  epochs : Controller.epoch list;
  all_verified : bool;  (** every epoch verified (and audited, if chaos ran) *)
  union_n : int;
  reconfig : Reconfig.t;  (** the lowered timeline the driver replayed *)
  result : Driver.result;
  slo_ok : bool;
}

let slo_ok (tc : traffic) (r : Driver.result) =
  r.Driver.delivery_fraction +. 1e-9 >= tc.min_delivery && r.Driver.p95_delay <= tc.max_p95

let load_trace (cc : controller) ~(spec : Spec.t) ~family =
  match cc.trace_file with
  | Some path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | text -> Result.map_error Overlay.Error.to_string (Controller.parse_trace text)
      | exception Sys_error msg -> Error msg)
  | None ->
      Ok
        (Controller.random_trace ~seed:spec.Spec.seed ?join_probability:cc.join_probability
           ~family ~k:spec.Spec.k ~n0:spec.Spec.n ~steps:cc.steps ())

let controller_chaos (cc : controller) ~seed =
  match cc.chaos_adversary with
  | None -> Ok None
  | Some name ->
      Result.map
        (fun adv ->
          Some
            (Controller.chaos ~plans_per_level:cc.chaos_plans_per_level
               ?max_faults:cc.chaos_max_faults ~seed adv))
        (Chaos.Gen.of_string name)

let run ?obs ?pool t =
  let ( let* ) = Result.bind in
  let* () = validate t in
  let spec = t.spec in
  let family = Option.get (family_of_topology spec.Spec.topology) in
  let* chaos = controller_chaos t.controller ~seed:spec.Spec.seed in
  let* trace = load_trace t.controller ~spec ~family in
  let* plan =
    match t.traffic.plan_file with
    | None -> Ok None
    | Some path -> Result.map Option.some (Chaos.Plan.of_file path)
  in
  let verify = if t.controller.full_verify then Controller.Full else Controller.Cached in
  let* ctrl =
    Result.map_error Overlay.Error.to_string
      (Controller.create ?pool ~verify ?chaos ~family ~k:spec.Spec.k ~n:spec.Spec.n ())
  in
  let* epochs =
    Result.map_error Overlay.Error.to_string
      (Controller.run ~batch:t.controller.batch ctrl trace)
  in
  (* the paper's stripe width comes from the base overlay's k, not the
     union snapshot's inflated degrees *)
  let tree_count = Some (max 1 (spec.Spec.k / 2)) in
  let union_g, reconfig =
    lower ~epoch_interval:t.epoch_interval ~tree_count ~base:(Controller.base_graph ctrl)
      epochs
  in
  let csr = Csr.of_graph union_g in
  (* pin the evenly-spread origins inside the t = 0 membership — spread
     over the union range they could land on a vertex that has not
     joined yet *)
  let workload =
    Workload.with_sources
      (Workload.resolve_sources t.traffic.workload ~n:spec.Spec.n)
      t.traffic.workload
  in
  let env =
    Spec.to_env ?obs ?pool spec
    |> (match t.traffic.capacity with
       | Some r -> Flood.Env.with_link_capacity r
       | None -> Fun.id)
    |> (match t.traffic.queue_cap with
       | Some q -> Flood.Env.with_queue_cap q
       | None -> Fun.id)
    |> (match t.traffic.queue_policy with
       | Some p -> Flood.Env.with_queue_policy p
       | None -> Fun.id)
    |> if t.traffic.bands > 1 then Flood.Env.with_bands t.traffic.bands else Fun.id
  in
  match Driver.run_csr_env ~env ?plan ~reconfig ~csr ~workload () with
  | exception Invalid_argument msg -> Error msg
  | result ->
      Ok
        {
          epochs;
          all_verified = List.for_all Controller.epoch_ok epochs;
          union_n = Reconfig.(reconfig.union_n);
          reconfig;
          result;
          slo_ok = slo_ok t.traffic result;
        }

(* lhg-scenario/1: header, controller summary, the full traffic body
   (Driver.emit), the SLO verdict. No wall-clock fields anywhere, so
   equal scenarios produce byte-identical documents. *)
let schema = "lhg-scenario/1"

let report t outcome =
  let module S = Obs.Stream in
  let s = S.create ~schema () in
  S.str s "topology" t.spec.Spec.topology;
  S.int s "n" t.spec.Spec.n;
  S.int s "k" t.spec.Spec.k;
  S.int s "seed" t.spec.Spec.seed;
  S.int s "union_n" outcome.union_n;
  S.float s "epoch_interval" t.epoch_interval;
  S.obj s "controller" (fun s ->
      S.int s "epochs" (List.length outcome.epochs);
      S.int s "applied"
        (List.fold_left
           (fun a (e : Controller.epoch) -> a + e.Controller.applied)
           0 outcome.epochs);
      S.int s "repairs"
        (List.length
           (List.filter
              (fun (e : Controller.epoch) -> e.Controller.strategy = Controller.Repair)
              outcome.epochs));
      S.int s "rebuilds"
        (List.length
           (List.filter
              (fun (e : Controller.epoch) -> e.Controller.strategy = Controller.Rebuild)
              outcome.epochs));
      S.int s "final_n"
        (match List.rev outcome.epochs with
        | e :: _ -> e.Controller.n_after
        | [] -> t.spec.Spec.n);
      S.bool s "all_verified" outcome.all_verified);
  Driver.emit s outcome.result;
  S.obj s "slo" (fun s ->
      S.float s "min_delivery" t.traffic.min_delivery;
      S.float s "max_p95" t.traffic.max_p95;
      S.bool s "ok" outcome.slo_ok);
  S.contents s

(* the standalone lhg-traffic/1 document: the header the old
   Driver.to_json hard-coded, then the shared body *)
let report_traffic ~topology ~n ~k ~seed r =
  let module S = Obs.Stream in
  let s = S.create ~schema:Driver.schema () in
  S.str s "topology" topology;
  S.int s "n" n;
  S.int s "k" k;
  S.int s "seed" seed;
  Driver.emit s r;
  S.contents s
