(** One protocol run, described before it exists: the record every
    front end fills in and every driver consumes.

    Before this module, each CLI subcommand re-plumbed the same six
    flags into its own [Flood.Env] by hand — topology here, seed
    there, a pool spun up in a third place, the [--engine] flag only
    where someone had remembered it. A [Spec.t] is that tuple made
    first-class: what to build ([topology], [n], [k], [seed]), how to
    run it ([engine], [jobs]) and what to report ([metrics]). The
    helpers then derive everything else — {!graph}/{!csr} through
    {!Topo.Registry}, a {!Flood.Env.t} through {!to_env}, pool lifecycle
    through {!with_pool} — so "assemble", "traffic", "chaos" and
    friends differ only in the protocol they hand the env to. *)

type metrics = [ `Json | `Text ]

type t = {
  topology : string;  (** a {!Topo.Registry} name *)
  n : int;
  k : int;
  seed : int;
  jobs : int;  (** 0 = shared default pool, 1 = sequential, N = pool of N *)
  engine : Netsim.Sim.engine;
  metrics : metrics option;  (** observability sink; [None] = off *)
}

val default : t
(** kdiamond, n = 46, k = 4, seed = 1, jobs = 1, Calendar, no
    metrics — the CLI's defaults, in one place. *)

val validate : t -> (t, string) result
(** Check the spec is runnable: known topology, admissible (n, k),
    non-negative jobs. Error strings match the CLI's established
    wording ("unknown kind ..." with the catalogue, the entry's
    requirement line, "--jobs must be >= 0"). *)

val entry : t -> (Topo.Registry.entry, string) result

val graph : t -> (Graph_core.Graph.t, string) result
(** Build the adjacency-set graph through the registry. *)

val csr : ?big:bool -> t -> (Graph_core.Csr.t, string) result
(** Build the frozen CSR through the registry's uniform [csr] field. *)

val construction : t -> (Lhg_core.Build.construction, string) result
(** The LHG construction behind [topology], or an error naming the
    entries that have one — for drivers (assembly) that need the shape
    arithmetic itself, not just the realised graph. *)

val obs : t -> Obs.Registry.t
(** A fresh registry when [metrics] is set, {!Obs.Registry.nil}
    otherwise. *)

val to_env : ?obs:Obs.Registry.t -> ?pool:Par.Pool.t -> t -> Flood.Env.t
(** The {!Flood.Env.t} this spec describes: seed, engine, obs sink and pool
    installed, everything else at {!Flood.Env.default}. *)

val with_pool : t -> (Par.Pool.t option -> 'a) -> ('a, string) result
(** Run [f] under the pool [jobs] asks for: [None] when sequential,
    the shared default pool for [jobs = 0], a fresh pool (shut down on
    the way out, exceptions included) for [jobs > 1]. [Error] on
    negative [jobs]. *)
