type metrics = [ `Json | `Text ]

type t = {
  topology : string;
  n : int;
  k : int;
  seed : int;
  jobs : int;
  engine : Netsim.Sim.engine;
  metrics : metrics option;
}

let default =
  {
    topology = "kdiamond";
    n = 46;
    k = 4;
    seed = 1;
    jobs = 1;
    engine = Netsim.Sim.Calendar;
    metrics = None;
  }

let entry t =
  match Topo.Registry.find t.topology with
  | Some e -> Ok e
  | None ->
      Error
        (Printf.sprintf "unknown kind %S (expected one of: %s)" t.topology
           (String.concat ", " Topo.Registry.names))

let validate t =
  if t.jobs < 0 then Error "--jobs must be >= 0"
  else
    Result.bind (entry t) (fun e ->
        if e.Topo.Registry.admissible ~n:t.n ~k:t.k then Ok t
        else Error e.Topo.Registry.requirement)

let graph t = Topo.Registry.build_graph ~kind:t.topology ~n:t.n ~k:t.k ~seed:t.seed

let csr ?big t = Topo.Registry.build_csr_graph ?big ~kind:t.topology ~n:t.n ~k:t.k ~seed:t.seed ()

let construction t =
  Result.bind (entry t) (fun e ->
      match e.Topo.Registry.construction with
      | Some c -> Ok c
      | None ->
          let witnessed =
            Topo.Registry.all
            |> List.filter_map (fun e ->
                   if e.Topo.Registry.construction <> None then Some e.Topo.Registry.name else None)
          in
          Error
            (Printf.sprintf "%s is not an LHG construction (expected one of: %s)" t.topology
               (String.concat ", " witnessed)))

let obs t = match t.metrics with None -> Obs.Registry.nil | Some _ -> Obs.Registry.create ()

let to_env ?obs ?pool t =
  let env = Flood.Env.default |> Flood.Env.with_seed t.seed |> Flood.Env.with_engine t.engine in
  let env = match obs with Some o -> Flood.Env.with_obs o env | None -> env in
  Flood.Env.with_pool pool env

let with_pool t f =
  if t.jobs < 0 then Error "--jobs must be >= 0"
  else if t.jobs = 0 then Ok (f (Some (Par.Pool.default ())))
  else if t.jobs = 1 then Ok (f None)
  else
    let pool = Par.Pool.create ~domains:t.jobs in
    Ok (Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f (Some pool)))
