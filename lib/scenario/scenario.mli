(** Churn under load, behind one record: a sustained traffic stream
    and an epoch-based controller reconfiguration sharing a simulated
    clock.

    A scenario composes the three flag groups the CLI already speaks —
    a {!Spec} (topology, sizes, seed, engine, jobs, metrics), a
    {!traffic} record (workload, link capacity and queueing, priority
    bands, mid-stream chaos plan, SLOs) and a {!controller} record
    (request trace, batching, verification mode, per-epoch chaos
    audits) — plus the one scenario-only knob, {!t.epoch_interval}.

    {!run} pre-plays the controller trace into committed epochs
    (pure graph work, engine-independent), freezes the {e union} of
    every epoch's edge set into one CSR snapshot, lowers the epochs to
    a {!Traffic.Reconfig} timeline ({!lower}) and hands everything to
    {!Traffic.Driver.run_csr_env}: leavers crash, joiners recover,
    rewired links fail/restore, tree packs re-stripe incrementally,
    and (with [bands > 1]) each commit announces itself on the
    network's priority band. The {!report} document ([lhg-scenario/1])
    is byte-identical across event engines and [--jobs] counts. *)

module Spec = Spec

(** {2 Flag-group records} *)

type traffic = {
  workload : Traffic.Workload.t;
  capacity : float option;  (** per-link service rate; [None] = infinite *)
  queue_cap : int option;
  queue_policy : Netsim.Network.queue_policy option;
  bands : int;  (** link priority bands (1–4); > 1 gives epoch commits a fast lane *)
  plan_file : string option;  (** chaos plan scheduled mid-stream *)
  min_delivery : float;  (** SLO floor on delivery fraction *)
  max_p95 : float;  (** SLO ceiling on p95 delay *)
}

val default_traffic : traffic
(** [Workload.default], infinite links, one band, no plan, full
    coverage required, unbounded p95 — the [traffic] subcommand's
    defaults. *)

type controller = {
  steps : int;  (** length of the generated random trace *)
  trace_file : string option;  (** explicit request trace; wins over [steps] *)
  batch : int;  (** requests batched into one epoch *)
  join_probability : float option;
  chaos_adversary : string option;  (** per-epoch chaos audit generator *)
  chaos_plans_per_level : int;
  chaos_max_faults : int option;
  full_verify : bool;
}

val default_controller : controller
(** 40 steps, batch 8, cached verification, no chaos — the
    [controller] subcommand's defaults. *)

type chaos_audit = {
  adversary : string;
  audit_plan_file : string option;
  source : int;  (** -1 = first vertex outside the adversary's targets *)
  max_faults : int option;  (** [None] = the connectivity degree k *)
  plans_per_level : int;
}
(** The [chaos] subcommand's flag group — decoded once here so every
    front end shares one source of truth, though a scenario run's own
    chaos is the mid-stream plan on {!traffic}. *)

val default_chaos_audit : chaos_audit

(** {2 The scenario} *)

type t = {
  spec : Spec.t;
  traffic : traffic;
  controller : controller;
  epoch_interval : float;  (** simulated time between epoch commits *)
}

val default : t
(** {!Spec.default} + {!default_traffic} + {!default_controller},
    epochs 50 time units apart. *)

val family_of_topology : string -> Overlay.Membership.family option
(** The controller family behind a registry kind, for the kinds that
    have one (ktree, kdiamond, jd, harary). *)

val validate : t -> (unit, string) result
(** The single validation gate: spec runnable ({!Spec.validate}),
    topology reconfigurable, bands in 1–4, positive epoch interval,
    sane batch/steps, workload valid for the spec's n. Error strings
    match the CLI's established wording. *)

val lower :
  epoch_interval:float ->
  tree_count:int option ->
  base:Graph_core.Graph.t ->
  Overlay.Controller.epoch list ->
  Graph_core.Graph.t * Traffic.Reconfig.t
(** Lower committed epochs onto a traffic timeline: returns the union
    graph (every edge any epoch ever had — the frozen snapshot the
    stream runs on) and the {!Traffic.Reconfig} schedule: epoch [i]
    commits at [epoch_interval * (i+1)], size changes become
    contiguous join/leave ranges (membership is always a prefix), the
    diff's added/removed edges become link flips, and rebuild-strategy
    epochs are flagged for a full re-pack. Exposed for tests. *)

type outcome = {
  epochs : Overlay.Controller.epoch list;
  all_verified : bool;  (** every epoch verified (and audited, if chaos ran) *)
  union_n : int;
  reconfig : Traffic.Reconfig.t;  (** the lowered timeline the driver replayed *)
  result : Traffic.Driver.result;
  slo_ok : bool;
}

val run :
  ?obs:Obs.Registry.t -> ?pool:Par.Pool.t -> t -> (outcome, string) result
(** Validate, pre-play the controller, lower, stream. [Error] carries
    the CLI-ready message for anything from an unknown topology to an
    unreadable trace file to a driver rejection; the traffic sources
    are pinned inside the t = 0 membership before the run. *)

val schema : string
(** ["lhg-scenario/1"]. *)

val report : t -> outcome -> string
(** The run as one [lhg-scenario/1] document: header, controller
    summary (epochs, applied, repair/rebuild split, final n,
    [all_verified]), the full traffic body ({!Traffic.Driver.emit})
    and the SLO verdict. No wall-clock fields — equal scenarios give
    byte-identical documents. *)

val report_traffic :
  topology:string -> n:int -> k:int -> seed:int -> Traffic.Driver.result -> string
(** The standalone [lhg-traffic/1] document (the old [Driver.to_json]
    surface): the explicit header plus the shared result body. *)
