module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Sim = Netsim.Sim
module Network = Netsim.Network
module Env = Flood.Env
module Build = Lhg_core.Build

type params = {
  period : float;
  stability : int;
  link_timeout : float;
  retry : float;
  max_rounds : int option;
}

let default_params =
  { period = 3.0; stability = 2; link_timeout = 9.0; retry = 3.0; max_rounds = None }

type result = {
  n : int;
  k : int;
  construction : Build.construction;
  seed : int;
  converged : bool;
  verified : bool;
  certified : bool option;
  matches_target : bool;
  capped : bool;
  rounds : int;
  gossip_rounds : int;
  duration : float;
  messages : int;
  pushes : int;
  replies : int;
  link_reqs : int;
  link_acks : int;
  link_nacks : int;
  freezes : int;
  unfreezes : int;
  deaths_declared : int;
  views_interned : int;
  final_members : int array;
  declared_dead : int array;
  retired : int array;
  realized : Graph.t option;
}

(* The whole per-node machine is mutable state plus closures on the
   simulator; nothing here is shared across domains. *)
type node = {
  id : int;
  mutable vref : int;  (** current view (interned ref) *)
  mutable changed : bool;  (** view changed since last tick *)
  mutable stable : int;  (** consecutive unchanged ticks *)
  mutable round : int;  (** last executed tick index *)
  mutable frozen : bool;
  mutable gen : int;  (** freeze generation — stale-timer guard *)
  mutable freeze_round : int;
  mutable targets : int array;  (** member ids, current freeze *)
  mutable acked : bool array;
  mutable nacked : bool array;
  mutable unacked : int;
  mutable tick_pending : bool;
  mutable evicted : bool;  (** found itself outside its own live set *)
  mutable aborted : bool;  (** hit the round backstop *)
  established : (int, int) Hashtbl.t;  (** peer -> view ref of the handshake *)
}

(* bits needed for n (⌈log2 n⌉ for n ≥ 2) — scales the round backstop *)
let bits n =
  let r = ref 0 and v = ref (n - 1) in
  while !v > 0 do
    incr r;
    v := !v lsr 1
  done;
  !r

(* Peer choice is a pure splitmix64-style hash of (seed, node, round):
   drawing from the simulator RNG would entangle gossip partners with
   delivery order and break engine-identity the moment two schedules
   interleave differently. *)
let mix seed node round =
  let z =
    let open Int64 in
    let z =
      ref
        (logxor (of_int seed)
           (add
              (mul (of_int (node + 1)) 0x9E3779B97F4A7C15L)
              (mul (of_int (round + 1)) 0xBF58476D1CE4E5B9L)))
    in
    z := mul (logxor !z (shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L;
    z := mul (logxor !z (shift_right_logical !z 27)) 0x94D049BB133111EBL;
    z := logxor !z (shift_right_logical !z 31);
    !z
  in
  Int64.to_int z land max_int

(* the quadratic substrate is the scale bound: 8k nodes ≈ 64M directed
   slots, past which the complete underlay stops being a model and
   starts being the workload *)
let max_substrate = 8192

let run ~env ?plan ?(params = default_params) ?(certify = false) ~construction ~n ~k () =
  if n < 2 then invalid_arg "Assemble.run: n must be >= 2";
  if n > max_substrate then
    invalid_arg
      (Printf.sprintf "Assemble.run: n = %d exceeds the %d-node substrate bound" n max_substrate);
  if k < 2 then invalid_arg "Assemble.run: k must be >= 2";
  if
    not
      (params.period > 0.0 && params.link_timeout > 0.0 && params.retry > 0.0
     && params.stability >= 1)
  then invalid_arg "Assemble.run: params must be positive";
  let max_rounds =
    match params.max_rounds with
    | Some m ->
        if m < 1 then invalid_arg "Assemble.run: max_rounds must be >= 1";
        m
    | None -> (24 * bits n) + 64
  in
  let csr = Wire.substrate ~n in
  (match plan with
  | Some p -> (
      match Chaos.Plan.validate csr p with
      | Error e -> invalid_arg ("Assemble.run: invalid plan: " ^ e)
      | Ok () -> ())
  | None -> ());
  let seed = Env.seed_value env in
  let sim = Env.sim_of env in
  let net : int Network.t = Env.network_of_csr env ~sim ~csr in
  List.iter (fun v -> Network.crash net v) env.Env.crashed;
  List.iter (fun (u, v) -> Network.fail_link net u v) env.Env.failed_links;
  (match env.Env.prepare with Some { Env.prepare } -> prepare net | None -> ());
  (match plan with Some p -> Chaos.Exec.install net p | None -> ());
  let pool = View.Pool.create () in
  let pushes = ref 0
  and replies = ref 0
  and link_reqs = ref 0
  and link_acks = ref 0
  and link_nacks = ref 0
  and freezes = ref 0
  and unfreezes = ref 0
  and deaths = ref 0
  and capped = ref false in
  (* the convergence clock: the last instant any node's protocol state
     advanced — ticks and straggler timeouts after it don't count *)
  let last_progress = ref 0.0 in
  let progress () = last_progress := Sim.now sim in
  (* target adjacency per view: |live| ranks -> member ids, computed
     once per distinct view from the shape arithmetic — the slot
     election every frozen node replays identically *)
  let target_tbl : (int, int array array option) Hashtbl.t = Hashtbl.create 16 in
  let targets_for vref =
    match Hashtbl.find_opt target_tbl vref with
    | Some x -> x
    | None ->
        let lv = View.live (View.Pool.get pool vref) in
        let n' = Array.length lv in
        let x =
          if n' < 2 * k then None
          else
            match Build.build_csr construction ~n:n' ~k with
            | Error _ -> None
            | Ok tcsr ->
                Some
                  (Array.init n' (fun r ->
                       Array.map (fun j -> lv.(j)) (Array.of_list (Csr.neighbors tcsr r))))
        in
        Hashtbl.add target_tbl vref x;
        x
  in
  let nodes =
    Array.init n (fun v ->
        {
          id = v;
          vref = View.Pool.intern pool (View.bootstrap ~self:v ~contact:((v + 1) mod n));
          changed = false;
          stable = 0;
          round = 0;
          frozen = false;
          gen = 0;
          freeze_round = 0;
          targets = [||];
          acked = [||];
          nacked = [||];
          unacked = 0;
          tick_pending = false;
          evicted = false;
          aborted = false;
          established = Hashtbl.create 8;
        })
  in
  let send nd dst tag =
    (match tag with
    | Wire.Push -> incr pushes
    | Wire.Reply -> incr replies
    | Wire.Link_req -> incr link_reqs
    | Wire.Link_ack -> incr link_acks
    | Wire.Link_nack -> incr link_nacks);
    Network.send_int net ~src:nd.id ~dst ~eidx:(Wire.eidx ~n nd.id dst) (Wire.pack tag nd.vref)
  in
  let tindex nd src =
    let rec go i =
      if i >= Array.length nd.targets then -1 else if nd.targets.(i) = src then i else go (i + 1)
    in
    go 0
  in
  let rec schedule_tick nd r =
    nd.tick_pending <- true;
    Sim.schedule_at sim ~time:(params.period *. float_of_int r) (fun () -> tick nd r)
  and tick nd r =
    nd.tick_pending <- false;
    if Network.is_crashed net nd.id || nd.evicted || nd.frozen then ()
    else if r >= max_rounds then begin
      nd.aborted <- true;
      capped := true
    end
    else begin
      nd.round <- r;
      let lv = View.live (View.Pool.get pool nd.vref) in
      if not (View.mem lv nd.id) then nd.evicted <- true
      else begin
        if nd.changed then begin
          nd.changed <- false;
          nd.stable <- 0
        end
        else nd.stable <- nd.stable + 1;
        if nd.stable >= params.stability && try_freeze nd r lv then ()
        else begin
          do_push nd r lv;
          schedule_tick nd (r + 1)
        end
      end
    end
  and do_push nd r lv =
    let c = Array.length lv - 1 in
    if c > 0 then begin
      let rk = View.rank lv nd.id in
      let idx = mix seed nd.id r mod c in
      let peer = lv.(if idx >= rk then idx + 1 else idx) in
      send nd peer Wire.Push
    end
  and try_freeze nd r lv =
    match targets_for nd.vref with
    | None -> false
    | Some adj ->
        nd.frozen <- true;
        nd.freeze_round <- r;
        nd.gen <- nd.gen + 1;
        incr freezes;
        progress ();
        let tg = adj.(View.rank lv nd.id) in
        nd.targets <- tg;
        let len = Array.length tg in
        nd.acked <- Array.make len false;
        nd.nacked <- Array.make len false;
        nd.unacked <- len;
        Array.iter (fun t -> send nd t Wire.Link_req) tg;
        schedule_timeout nd nd.gen;
        true
  and unfreeze nd =
    nd.frozen <- false;
    nd.gen <- nd.gen + 1;
    nd.stable <- 0;
    incr unfreezes;
    resume_tick nd
  and resume_tick nd =
    if not (nd.tick_pending || nd.evicted || nd.aborted) then begin
      let next =
        max (nd.round + 1) (int_of_float (Float.floor (Sim.now sim /. params.period)) + 1)
      in
      schedule_tick nd next
    end
  and adopt_ref nd mref =
    if mref <> nd.vref then begin
      nd.vref <- mref;
      nd.changed <- true;
      progress ();
      if nd.frozen then unfreeze nd
    end
  and schedule_timeout nd gen =
    Sim.schedule sim ~delay:params.link_timeout (fun () -> link_timeout nd gen)
  and link_timeout nd gen =
    if (not (Network.is_crashed net nd.id)) && nd.frozen && nd.gen = gen && nd.unacked > 0 then begin
      let silent = ref [] in
      Array.iteri
        (fun i t -> if (not nd.acked.(i)) && not nd.nacked.(i) then silent := t :: !silent)
        nd.targets;
      match !silent with
      | [] ->
          (* every pending target answered with a nack recently — the
             retry cycle is alive, keep watching *)
          schedule_timeout nd gen
      | dead ->
          (* silence is the only crash signal a node gets *)
          let deadarr = Array.of_list dead in
          deaths := !deaths + Array.length deadarr;
          adopt_ref nd (View.Pool.intern pool (View.add_dead (View.Pool.get pool nd.vref) deadarr))
    end
  and retry_link nd gen i =
    if (not (Network.is_crashed net nd.id)) && nd.frozen && nd.gen = gen && not nd.acked.(i)
    then begin
      (* clear the nack evidence: if the peer is dead by now, the next
         timeout sees silence and declares it *)
      nd.nacked.(i) <- false;
      send nd nd.targets.(i) Wire.Link_req
    end
  in
  Network.set_int_receiver net (fun ~dst ~src payload ->
      let nd = nodes.(dst) in
      let tag, vref = Wire.unpack payload in
      match tag with
      | Wire.Push ->
          adopt_ref nd (View.Pool.merge_refs pool nd.vref vref);
          send nd src Wire.Reply
      | Wire.Reply -> adopt_ref nd (View.Pool.merge_refs pool nd.vref vref)
      | Wire.Link_req ->
          if nd.frozen && vref = nd.vref then begin
            Hashtbl.replace nd.established src nd.vref;
            progress ();
            send nd src Wire.Link_ack
          end
          else begin
            (* merge first so the nack carries the union — the
               requester learns everything we know in one message *)
            adopt_ref nd (View.Pool.merge_refs pool nd.vref vref);
            send nd src Wire.Link_nack
          end
      | Wire.Link_ack ->
          if nd.frozen && vref = nd.vref then begin
            let i = tindex nd src in
            if i >= 0 && not nd.acked.(i) then begin
              nd.acked.(i) <- true;
              nd.unacked <- nd.unacked - 1;
              Hashtbl.replace nd.established src nd.vref;
              progress ()
            end
          end
      | Wire.Link_nack ->
          let merged = View.Pool.merge_refs pool nd.vref vref in
          if merged <> nd.vref then adopt_ref nd merged
          else if nd.frozen then begin
            (* the responder is behind us: it unfroze on our req and
               will catch up — re-request after a round *)
            let i = tindex nd src in
            if i >= 0 && not nd.acked.(i) then begin
              nd.nacked.(i) <- true;
              let gen = nd.gen in
              Sim.schedule sim ~delay:params.retry (fun () -> retry_link nd gen i)
            end
          end);
  Array.iter (fun nd -> schedule_tick nd 0) nodes;
  Sim.run sim;
  let duration = Sim.now sim in
  let everc = Network.ever_crashed net in
  let retired = ref [] in
  for v = n - 1 downto 0 do
    if everc.(v) then retired := v :: !retired
  done;
  let participants = ref [] in
  for v = n - 1 downto 0 do
    if not everc.(v) then participants := nodes.(v) :: !participants
  done;
  let participants = !participants in
  let consensus =
    match participants with
    | [] -> None
    | first :: rest ->
        let settled nd = nd.frozen && nd.unacked = 0 && (not nd.aborted) && not nd.evicted in
        if
          settled first
          && List.for_all (fun nd -> settled nd && nd.vref = first.vref) rest
          &&
          let lv = View.live (View.Pool.get pool first.vref) in
          List.for_all (fun nd -> View.mem lv nd.id) participants
        then Some first.vref
        else None
  in
  let converged = consensus <> None in
  let final_members, declared_dead =
    match consensus with
    | None -> ([||], [||])
    | Some v0 ->
        let v = View.Pool.get pool v0 in
        (View.live v, v.View.dead)
  in
  (* the realized overlay: an edge exists iff both endpoints recorded
     the handshake under the consensus view *)
  let realized =
    match consensus with
    | None -> None
    | Some v0 ->
        let lv = final_members in
        let n' = Array.length lv in
        let g = Graph.create ~n:n' in
        Array.iteri
          (fun r u ->
            let peers =
              Hashtbl.fold
                (fun p pref acc -> if pref = v0 && p > u then p :: acc else acc)
                nodes.(u).established []
              |> List.sort compare
            in
            List.iter
              (fun p ->
                match Hashtbl.find_opt nodes.(p).established u with
                | Some pref when pref = v0 ->
                    let rp = View.rank lv p in
                    if rp >= 0 then Graph.add_edge g r rp
                | _ -> ())
              peers)
          lv;
        Some g
  in
  let verified =
    match realized with
    | None -> false
    | Some g -> Lhg_core.Verify.quick ?pool:env.Env.pool g ~k
  in
  let matches_target =
    match realized with
    | None -> false
    | Some g -> (
        match Build.build_csr construction ~n:(Graph.n g) ~k with
        | Error _ -> false
        | Ok t ->
            Graph.m g = Csr.m t
            &&
            let ok = ref true in
            for r = 0 to Csr.n t - 1 do
              Csr.iter_neighbors t r (fun j -> if j > r && not (Graph.has_edge g r j) then ok := false)
            done;
            !ok)
  in
  let certified =
    if not certify then None
    else
      Some
        (match realized with
        | None -> false
        | Some g ->
            let c = Overlay.Cert.create ~k in
            Overlay.Cert.rebuild c ~graph:g)
  in
  let gossip_rounds =
    List.fold_left (fun a nd -> if nd.frozen then max a nd.freeze_round else a) 0 participants
  in
  let rounds = int_of_float (Float.ceil (!last_progress /. params.period)) in
  let stats = Network.stats net in
  let obs = env.Env.obs in
  if Obs.Registry.enabled obs then begin
    Obs.Registry.add (Obs.Registry.counter obs "assemble.pushes") !pushes;
    Obs.Registry.add (Obs.Registry.counter obs "assemble.link_reqs") !link_reqs;
    Obs.Registry.add (Obs.Registry.counter obs "assemble.freezes") !freezes;
    Obs.Registry.add (Obs.Registry.counter obs "assemble.unfreezes") !unfreezes;
    Obs.Registry.add (Obs.Registry.counter obs "assemble.deaths_declared") !deaths;
    Obs.Registry.set_max (Obs.Registry.gauge obs "assemble.rounds") (float_of_int rounds)
  end;
  {
    n;
    k;
    construction;
    seed;
    converged;
    verified;
    certified;
    matches_target;
    capped = !capped;
    rounds;
    gossip_rounds;
    duration;
    messages = stats.Network.sent;
    pushes = !pushes;
    replies = !replies;
    link_reqs = !link_reqs;
    link_acks = !link_acks;
    link_nacks = !link_nacks;
    freezes = !freezes;
    unfreezes = !unfreezes;
    deaths_declared = !deaths;
    views_interned = View.Pool.size pool;
    final_members;
    declared_dead;
    retired = Array.of_list !retired;
    realized;
  }

let construction_name = function
  | Build.Ktree -> "ktree"
  | Build.Kdiamond -> "kdiamond"
  | Build.Kdiamond_rich -> "kdiamond_rich"
  | Build.Jd { strict } -> if strict then "jd" else "jd_relaxed"

let schema = "lhg-assemble/1"

let to_json r =
  let module S = Obs.Stream in
  let s = S.create ~schema () in
  S.str s "mode" "run";
  S.str s "construction" (construction_name r.construction);
  S.int s "n" r.n;
  S.int s "k" r.k;
  S.int s "seed" r.seed;
  S.obj s "protocol" (fun s ->
      S.int s "rounds" r.rounds;
      S.int s "gossip_rounds" r.gossip_rounds;
      S.float s "duration" r.duration;
      S.bool s "capped" r.capped;
      S.int s "freezes" r.freezes;
      S.int s "unfreezes" r.unfreezes;
      S.int s "deaths_declared" r.deaths_declared;
      S.int s "views_interned" r.views_interned);
  S.obj s "messages" (fun s ->
      S.int s "total" r.messages;
      S.int s "pushes" r.pushes;
      S.int s "replies" r.replies;
      S.int s "link_reqs" r.link_reqs;
      S.int s "link_acks" r.link_acks;
      S.int s "link_nacks" r.link_nacks);
  S.obj s "members" (fun s ->
      S.int s "final" (Array.length r.final_members);
      S.ints s "declared_dead" (Array.to_list r.declared_dead);
      S.ints s "retired" (Array.to_list r.retired));
  (match r.realized with
  | None -> S.null s "realized_edges"
  | Some g -> S.int s "realized_edges" (Graph.m g));
  (match r.certified with
  | None -> S.null s "certified"
  | Some b -> S.bool s "certified" b);
  S.summary s (fun s ->
      S.bool s "converged" r.converged;
      S.bool s "verified" r.verified;
      S.bool s "matches_target" r.matches_target;
      S.int s "rounds" r.rounds;
      S.int s "messages" r.messages);
  S.contents s
