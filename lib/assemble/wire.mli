(** Wire format of the assembly protocol, and the point-to-point
    substrate it runs on.

    {2 Substrate}

    Assembly is about building the {e overlay}; underneath it every
    node can already address every other (the IP layer of the story).
    That underlay is modelled as a complete graph frozen into a
    {!Graph_core.Csr} — which makes every protocol message a plain
    {!Netsim.Network.send_int} on the int payload plane, with the CSR
    edge slot computed arithmetically ({!eidx}) instead of searched.
    Overlay links are protocol state, not substrate edges: the
    realized topology is collected from node state after the run.

    {2 Messages}

    One non-negative int per message: a 3-bit tag and a view ref
    ({!View.Pool}) in the remaining bits. Five tags:

    - [Push] — gossip: here is my view (answered by [Reply])
    - [Reply] — gossip: my view after merging yours (not answered)
    - [Link_req] — frozen on this view, you are my neighbour: link?
    - [Link_ack] — yes, frozen on the same view; link established
    - [Link_nack] — no: my current view is the payload (re-converge) *)

type tag =
  | Push
  | Reply
  | Link_req
  | Link_ack
  | Link_nack

val substrate : n:int -> Graph_core.Csr.t
(** The complete graph on [n] vertices, built directly in CSR form
    (no adjacency-set intermediate). *)

val eidx : n:int -> int -> int -> int
(** [eidx ~n u v]: the CSR slot of directed edge (u,v) in
    [substrate ~n] — row [u] is [0..n-1] minus [u], ascending, so the
    slot is [u*(n-1) + (if v < u then v else v-1)]. *)

val pack : tag -> int -> int
(** [pack tag vref] — [vref] must be ≥ 0 (view refs are pool indices,
    far below the payload plane's 2{^60} bound). *)

val unpack : int -> tag * int

val tag_name : tag -> string
