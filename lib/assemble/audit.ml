module Prng = Graph_core.Prng
module Env = Flood.Env

type report = {
  n : int;
  faults : int;
  victims : int list;
  converged : bool;
  verified : bool;
  matches_target : bool;
  capped : bool;
  rounds : int;
  gossip_rounds : int;
  messages : int;
  deaths_declared : int;
  unfreezes : int;
  duration : float;
}

type t = {
  construction : Lhg_core.Build.construction;
  k : int;
  sweep : report list;
  recovery : report list;
  all_ok : bool;
}

type config = { cfg_n : int; cfg_faults : int }

let run ~env ?params ~construction ~k ~sizes ~recovery_n ~max_faults () =
  if sizes = [] then invalid_arg "Assemble.Audit.run: sizes must be non-empty";
  if max_faults < 0 then invalid_arg "Assemble.Audit.run: max_faults < 0";
  if max_faults > k - 1 then
    invalid_arg "Assemble.Audit.run: max_faults must stay inside the k-1 boundary";
  let sweep_cfgs = List.map (fun n -> { cfg_n = n; cfg_faults = 0 }) sizes in
  let recovery_cfgs =
    List.init (max_faults + 1) (fun f -> { cfg_n = recovery_n; cfg_faults = f })
  in
  let configs = Array.of_list (sweep_cfgs @ recovery_cfgs) in
  let nconfigs = Array.length configs in
  let period = (match params with Some p -> p | None -> Run.default_params).Run.period in
  let seeds = Chaos.Audit.derive_seeds ~env nconfigs in
  let one ~obs i =
    let { cfg_n = n; cfg_faults = faults } = configs.(i) in
    let seed = seeds.(i) in
    (* victims come from the derived seed, never the run's own RNG, so
       the fault set is fixed before any simulation runs *)
    let victims =
      if faults = 0 then []
      else
        Prng.sample_without_replacement (Prng.create ~seed) ~k:faults ~n |> List.sort compare
    in
    let plan =
      if victims = [] then None
      else
        Some
          (Chaos.Plan.make
             (List.mapi
                (* one crash per gossip round, starting once gossip is
                   under way — the protocol mid-flight, not at rest *)
                (fun j v -> { Chaos.Plan.at = period *. float_of_int (j + 1); event = Chaos.Plan.Crash v })
                victims))
    in
    let run_env = { env with Env.seed = Some seed; obs; pool = None } in
    let r = Run.run ~env:run_env ?plan ?params ~construction ~n ~k () in
    {
      n;
      faults;
      victims;
      converged = r.Run.converged;
      verified = r.Run.verified;
      matches_target = r.Run.matches_target;
      capped = r.Run.capped;
      rounds = r.Run.rounds;
      gossip_rounds = r.Run.gossip_rounds;
      messages = r.Run.messages;
      deaths_declared = r.Run.deaths_declared;
      unfreezes = r.Run.unfreezes;
      duration = r.Run.duration;
    }
  in
  let observed = Obs.Registry.enabled env.Env.obs in
  let reports = Array.make nconfigs None in
  let store ~obs i = reports.(i) <- Some (one ~obs i) in
  (match env.Env.pool with
  | Some pool when Par.Pool.size pool > 1 && nconfigs > 1 ->
      let registries =
        Array.init nconfigs (fun _ -> if observed then Obs.Registry.create () else Obs.Registry.nil)
      in
      Par.Pool.parallel_for pool ~lo:0 ~hi:nconfigs (fun ~worker:_ i ->
          store ~obs:registries.(i) i);
      if observed then Array.iter (fun r -> Obs.Registry.merge env.Env.obs r) registries
  | _ ->
      let scratch = if observed then Obs.Registry.create () else Obs.Registry.nil in
      Array.iteri
        (fun i _ ->
          store ~obs:scratch i;
          if observed then begin
            Obs.Registry.merge env.Env.obs scratch;
            Obs.Registry.clear scratch
          end)
        configs);
  let reports = Array.to_list reports |> List.filter_map Fun.id in
  let nsweep = List.length sweep_cfgs in
  let sweep = List.filteri (fun i _ -> i < nsweep) reports in
  let recovery = List.filteri (fun i _ -> i >= nsweep) reports in
  let all_ok = List.for_all (fun r -> r.converged && r.verified) reports in
  { construction; k; sweep; recovery; all_ok }

let report_json s r =
  let module S = Obs.Stream in
  S.int s "n" r.n;
  S.int s "faults" r.faults;
  S.ints s "victims" r.victims;
  S.bool s "converged" r.converged;
  S.bool s "verified" r.verified;
  S.bool s "matches_target" r.matches_target;
  S.bool s "capped" r.capped;
  S.int s "rounds" r.rounds;
  S.int s "gossip_rounds" r.gossip_rounds;
  S.int s "messages" r.messages;
  S.int s "deaths_declared" r.deaths_declared;
  S.int s "unfreezes" r.unfreezes;
  S.float s "duration" r.duration

let to_json t =
  let module S = Obs.Stream in
  let s = S.create ~schema:Run.schema () in
  S.str s "mode" "audit";
  S.str s "construction" (Run.construction_name t.construction);
  S.int s "k" t.k;
  let table key rows =
    S.arr s key (fun s -> List.iter (fun r -> S.element s (fun s -> report_json s r)) rows)
  in
  table "sweep" t.sweep;
  table "recovery" t.recovery;
  S.summary s (fun s ->
      S.bool s "all_ok" t.all_ok;
      S.int s "configs" (List.length t.sweep + List.length t.recovery));
  S.contents s
