type t = { members : int array; dead : int array }

(* sorted-array set algebra: views are tiny relative to the message
   volume, so plain O(n) merges beat any tree structure *)

let dedup_sorted a =
  let n = Array.length a in
  if n <= 1 then a
  else begin
    let out = Array.make n a.(0) in
    let j = ref 0 in
    for i = 1 to n - 1 do
      if a.(i) <> out.(!j) then begin
        incr j;
        out.(!j) <- a.(i)
      end
    done;
    Array.sub out 0 (!j + 1)
  end

let normalize l =
  let a = Array.of_list l in
  Array.sort compare a;
  dedup_sorted a

let union a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < la && !j < lb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then begin
        out.(!k) <- x;
        incr i
      end
      else if y < x then begin
        out.(!k) <- y;
        incr j
      end
      else begin
        out.(!k) <- x;
        incr i;
        incr j
      end;
      incr k
    done;
    while !i < la do
      out.(!k) <- a.(!i);
      incr i;
      incr k
    done;
    while !j < lb do
      out.(!k) <- b.(!j);
      incr j;
      incr k
    done;
    Array.sub out 0 !k
  end

let diff a b =
  let la = Array.length a and lb = Array.length b in
  if lb = 0 then a
  else begin
    let out = Array.make la 0 in
    let j = ref 0 and k = ref 0 in
    for i = 0 to la - 1 do
      let x = a.(i) in
      while !j < lb && b.(!j) < x do
        incr j
      done;
      if not (!j < lb && b.(!j) = x) then begin
        out.(!k) <- x;
        incr k
      end
    done;
    if !k = la then a else Array.sub out 0 !k
  end

let inter a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (min la lb) 0 in
  let j = ref 0 and k = ref 0 in
  for i = 0 to la - 1 do
    let x = a.(i) in
    while !j < lb && b.(!j) < x do
      incr j
    done;
    if !j < lb && b.(!j) = x then begin
      out.(!k) <- x;
      incr k
    end
  done;
  Array.sub out 0 !k

let make ~members ~dead =
  let members = normalize members in
  let dead = inter (normalize dead) members in
  { members; dead }

let bootstrap ~self ~contact = make ~members:[ self; contact ] ~dead:[]

let merge a b =
  if a == b then a
  else { members = union a.members b.members; dead = union a.dead b.dead }

let add_dead t ids =
  let ids = Array.copy ids in
  Array.sort compare ids;
  { t with dead = union t.dead (inter (dedup_sorted ids) t.members) }

let live t = diff t.members t.dead

let equal a b = a == b || (a.members = b.members && a.dead = b.dead)

let key t =
  let b = Buffer.create (8 * (Array.length t.members + Array.length t.dead)) in
  Array.iter
    (fun v ->
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ',')
    t.members;
  Buffer.add_char b '|';
  Array.iter
    (fun v ->
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ',')
    t.dead;
  Buffer.contents b

let rank a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length a && a.(!lo) = x then !lo else -1

let mem a x = rank a x >= 0

module Pool = struct
  type view = t

  type nonrec t = {
    tbl : (string, int) Hashtbl.t;
    mutable views : view array;
    mutable len : int;
  }

  let create () = { tbl = Hashtbl.create 64; views = Array.make 16 { members = [||]; dead = [||] }; len = 0 }

  let get t r =
    if r < 0 || r >= t.len then invalid_arg "Assemble.View.Pool.get: unknown ref";
    t.views.(r)

  let size t = t.len

  let intern t v =
    let k = key v in
    match Hashtbl.find_opt t.tbl k with
    | Some r -> r
    | None ->
        let r = t.len in
        if r = Array.length t.views then begin
          let grown = Array.make (2 * r) v in
          Array.blit t.views 0 grown 0 r;
          t.views <- grown
        end;
        t.views.(r) <- v;
        t.len <- r + 1;
        Hashtbl.add t.tbl k r;
        r

  let merge_refs t a b =
    if a = b then a
    else begin
      let m = merge (get t a) (get t b) in
      let va = get t a in
      if equal m va then a
      else begin
        let vb = get t b in
        if equal m vb then b else intern t m
      end
    end
end
