(** Convergence audit: how fast does self-assembly settle, and does it
    survive construction-time faults — measured, not assumed.

    Two experiment families in one sweep:

    - {b Scaling} ([sizes]): crash-free assembly at each size. The
      claim under test is the epidemic one — convergence rounds grow
      like O(log n) while per-round traffic stays O(n) — so the bench
      gate asserts [rounds ≤ c·log2 n] over this row set.
    - {b Recovery} ([recovery_n], [max_faults]): fixed size, [f]
      mid-assembly crashes for [f = 0..max_faults]. Victims are drawn
      from the audit's derived per-config seed
      ({!Chaos.Audit.derive_seeds} — the same pre-derivation that
      makes {!Chaos.Audit} pool-invariant), crash times staggered one
      gossip round apart, injected as a {!Chaos.Plan} through the same
      [?plan] path the CLI exposes. For [f ≤ k−1] every run must end
      [converged && verified].

    Configs run under {!Par.Pool.parallel_for} when [env.pool] has
    more than one domain, with per-config observability registries
    merged in config order — byte-identical output at any [--jobs]
    and either engine, like every other audit in the repo. *)

type report = {
  n : int;
  faults : int;
  victims : int list;  (** crash victims, ascending (empty when [faults = 0]) *)
  converged : bool;
  verified : bool;
  matches_target : bool;
  capped : bool;
  rounds : int;
  gossip_rounds : int;
  messages : int;
  deaths_declared : int;
  unfreezes : int;
  duration : float;
}

type t = {
  construction : Lhg_core.Build.construction;
  k : int;
  sweep : report list;  (** one per size, crash-free, ascending [n] *)
  recovery : report list;  (** fixed [n], faults 0..max_faults *)
  all_ok : bool;  (** every config [converged && verified] *)
}

val run :
  env:Flood.Env.t ->
  ?params:Run.params ->
  construction:Lhg_core.Build.construction ->
  k:int ->
  sizes:int list ->
  recovery_n:int ->
  max_faults:int ->
  unit ->
  t
(** Run the full sweep. [max_faults] must be [≤ k - 1] — the audit
    measures recovery inside the guarantee boundary, not beyond it.
    @raise Invalid_argument on an empty [sizes], [max_faults < 0],
    [max_faults > k - 1], or any size too small for the construction
    (delegated to {!Run.run}). *)

val to_json : t -> string
(** [lhg-assemble/1] document, [mode = "audit"]: the scaling table,
    the recovery table, and the [all_ok] verdict — byte-deterministic
    across engines and pool sizes. *)
