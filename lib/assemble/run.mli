(** One self-assembly execution: n nodes, no coordinator, a valid LHG
    at the end — or an honest account of why not.

    {2 Protocol}

    Every node runs the same three-phase state machine on the int
    payload plane of a {!Netsim.Network} over the complete substrate
    ({!Wire.substrate}):

    - {b Gossip.} Once per round (every [params.period] time units) a
      node pushes its membership view ({!View}) to one live peer chosen
      by a pure hash of [(seed, node, round)] — never the simulator
      RNG, so peer choice is independent of delivery order. The peer
      replies with the merged view. Views only grow, so push-pull
      epidemic exchange converges every live node to the union view in
      O(log n) rounds.
    - {b Freeze and link.} After [params.stability] unchanged rounds a
      node freezes: it sorts the live members of its view, takes its
      rank as its slot, computes its target neighbourhood from the
      deterministic shape arithmetic of {!Lhg_core.Build} at
      [(|live|, k)] — the election nobody had to run — and sends
      [Link_req] to each target. A target frozen on the identical view
      acks (link established on both sides); any other answer is new
      information that unfreezes and resumes gossip.
    - {b Repair.} A frozen node whose request is neither acked nor
      nacked within [params.link_timeout] declares the silent target
      dead — crash detection is just a timeout, exactly as in a real
      deployment — merges the death into its view and unfreezes. The
      growing dead set gossips like any other view change, so the
      survivors re-elect slots over the reduced electorate and
      re-link, without restarting and without any node knowing the
      fault plan. Chaos plans are injected through
      [env.prepare]/[?plan] mid-assembly, the scenario class ROADMAP
      item 2 asked for.

    Every tick, timeout and retry re-checks {!Netsim.Network}'s crash
    state, so a crashed node simply stops participating; messages to
    it are dropped by the network at delivery time.

    {2 What the result means}

    [converged]: every node that never crashed ended frozen on one
    common view, every link of that view's target topology was
    established from both sides, and that view's live set accounts for
    every never-crashed node (members beyond them all crashed mid-run
    — tolerated late faults, not protocol errors). [verified] is the
    post-hoc check of the {e realized} link set — the graph actually
    recorded by ack exchanges, not the intent — under
    {!Lhg_core.Verify.quick}; [certified] (optional) rebuilds an
    {!Overlay.Cert} connectivity certificate over it, giving the
    constructive Menger witness on top of the decision procedure.
    [matches_target] pins realized = target edge-for-edge.

    Runs are deterministic: byte-identical results and
    [lhg-assemble/1] documents across the Calendar/Heap engines and
    any [--jobs] count (the run itself is a single simulation; pools
    only affect verification, which is pool-invariant). *)

type params = {
  period : float;  (** gossip round length (time units) *)
  stability : int;  (** unchanged rounds before freezing *)
  link_timeout : float;  (** silence before a target is declared dead *)
  retry : float;  (** delay before re-requesting a nacked link *)
  max_rounds : int option;  (** abort backstop; [None] = scaled default *)
}

val default_params : params
(** period 3.0 (send, deliver, reply), stability 2, link_timeout 9.0
    (three rounds), retry 3.0, max_rounds scaled to
    [24·⌈log2 n⌉ + 64]. *)

type result = {
  n : int;
  k : int;
  construction : Lhg_core.Build.construction;
  seed : int;
  converged : bool;
  verified : bool;  (** {!Lhg_core.Verify.quick} on the realized graph *)
  certified : bool option;  (** {!Overlay.Cert} rebuild, when requested *)
  matches_target : bool;  (** realized = target, edge for edge *)
  capped : bool;  (** some node hit the round backstop *)
  rounds : int;  (** ⌈last protocol progress / period⌉ — the headline *)
  gossip_rounds : int;  (** latest final-freeze round among survivors *)
  duration : float;  (** virtual time at quiescence (timeouts included) *)
  messages : int;  (** substrate messages sent, all tags *)
  pushes : int;
  replies : int;
  link_reqs : int;
  link_acks : int;
  link_nacks : int;
  freezes : int;
  unfreezes : int;
  deaths_declared : int;  (** timeout-declared deaths, double counting included *)
  views_interned : int;  (** distinct views seen anywhere in the run *)
  final_members : int array;  (** live set of the consensus view (empty if none) *)
  declared_dead : int array;  (** dead set of the consensus view *)
  retired : int array;  (** nodes that ever crashed (plan + static) *)
  realized : Graph_core.Graph.t option;
      (** the realized overlay on [final_members], relabelled by rank —
          present iff [converged] *)
}

val run :
  env:Flood.Env.t ->
  ?plan:Chaos.Plan.t ->
  ?params:params ->
  ?certify:bool ->
  construction:Lhg_core.Build.construction ->
  n:int ->
  k:int ->
  unit ->
  result
(** Assemble an [n]-node overlay targeting [construction] at degree
    [k]. [env] supplies seed, engine, observability, static faults and
    the [prepare] hook exactly as for every other [run_env] protocol;
    [?plan] schedules a {!Chaos.Plan} on the substrate mid-assembly
    (validated first). [?certify] (default false) additionally
    rebuilds an {!Overlay.Cert} over the realized graph.
    @raise Invalid_argument if [n < 2], [k < 2], the plan is invalid
    for the substrate, or params are non-positive. *)

val construction_name : Lhg_core.Build.construction -> string

val schema : string
(** ["lhg-assemble/1"]. *)

val to_json : result -> string
(** The versioned [lhg-assemble/1] document ({!Obs.Stream}):
    byte-deterministic, compared verbatim across engines and jobs in
    CI. *)
