module Csr = Graph_core.Csr

type tag =
  | Push
  | Reply
  | Link_req
  | Link_ack
  | Link_nack

let substrate ~n =
  if n < 2 then invalid_arg "Assemble.Wire.substrate: n must be >= 2";
  let b = Csr.Builder.create ~n () in
  (* lexicographic (u, v) with u < v fills every row in ascending
     order, so the builder's finishing sort sees sorted input *)
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      Csr.Builder.count_edge b u v
    done
  done;
  Csr.Builder.ready b;
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      Csr.Builder.add_edge b u v
    done
  done;
  Csr.Builder.finish b

let eidx ~n u v = (u * (n - 1)) + if v < u then v else v - 1

let tag_bits = 3

let to_int = function Push -> 0 | Reply -> 1 | Link_req -> 2 | Link_ack -> 3 | Link_nack -> 4

let of_int = function
  | 0 -> Push
  | 1 -> Reply
  | 2 -> Link_req
  | 3 -> Link_ack
  | 4 -> Link_nack
  | t -> invalid_arg (Printf.sprintf "Assemble.Wire.unpack: unknown tag %d" t)

let pack tag vref =
  if vref < 0 then invalid_arg "Assemble.Wire.pack: negative view ref";
  (vref lsl tag_bits) lor to_int tag

let unpack payload = (of_int (payload land ((1 lsl tag_bits) - 1)), payload lsr tag_bits)

let tag_name = function
  | Push -> "push"
  | Reply -> "reply"
  | Link_req -> "link_req"
  | Link_ack -> "link_ack"
  | Link_nack -> "link_nack"
