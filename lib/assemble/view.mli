(** Membership views: the join-semilattice the assembly protocol
    gossips over.

    A view is what one node currently believes about the group: the
    [members] it has ever heard of and the subset it has declared
    [dead]. Both sets only ever grow, and {!merge} is their pointwise
    union — so views form a join-semilattice and any gossip exchange
    moves both parties monotonically toward the same top element.
    That is the whole convergence argument: no retraction, no
    ordering assumptions, no coordinator.

    The [live] members — [members] minus [dead] — are the electorate:
    sorted ascending, their ranks are the slot assignment every node
    computes identically from the same view ({!Run}), which is what
    lets the deterministic kdiamond shape arithmetic replace a
    leader. *)

type t = private {
  members : int array;  (** sorted ascending, no duplicates *)
  dead : int array;  (** sorted ascending, a subset of [members] *)
}

val make : members:int list -> dead:int list -> t
(** Normalise (sort, dedup, clip [dead] to [members]). *)

val bootstrap : self:int -> contact:int -> t
(** The view a node is born with: itself and one contact, nobody
    dead. *)

val merge : t -> t -> t
(** Pointwise union — the lattice join. *)

val add_dead : t -> int array -> t
(** Declare members dead (ids not in [members] are ignored). *)

val live : t -> int array
(** [members] minus [dead], sorted ascending — the electorate. *)

val equal : t -> t -> bool

val key : t -> string
(** Canonical byte string: equal views have equal keys (the interning
    key of {!Pool}). *)

val mem : int array -> int -> bool
(** Binary-search membership in a sorted array. *)

val rank : int array -> int -> int
(** Binary-search rank in a sorted array; [-1] when absent. *)

(** Interning table: one integer per distinct view, allocated in
    first-seen order. Protocol messages carry these refs as their
    payload word, so view equality is integer equality on the wire and
    the whole run's message plane stays on {!Netsim}'s allocation-free
    int path. Refs are execution-order deterministic, hence identical
    across the Calendar and Heap engines. *)
module Pool : sig
  type view := t

  type t

  val create : unit -> t

  val intern : t -> view -> int
  (** The ref of this view, allocating on first sight. *)

  val get : t -> int -> view

  val size : t -> int

  val merge_refs : t -> int -> int -> int
  (** [merge_refs p a b]: ref of the join of two interned views ([a]
      when they coincide). *)
end
