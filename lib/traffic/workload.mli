(** Sustained-traffic workload configuration.

    A workload is a set of source nodes, each injecting a stream of
    payload chunks into the network under an arrival process; every
    chunk is flooded to all nodes. This record is the composable half
    of the Workload API: it describes {e what enters} the network
    (who sends, how many chunks, at what rate, with what inter-arrival
    law), while the {!Flood.Env} it is paired with describes {e what
    the network does} with the traffic (latency, loss, link capacity,
    queue bound/policy). {!Driver.run_env} consumes both.

    Like [Env], the record is built by piping [with_*] builders from
    {!default}; plain record update works too. *)

type arrival =
  | Periodic  (** source [i]'s chunk [j] enters at [(j+1)/rate] — a fixed drumbeat *)
  | Poisson
      (** exponential inter-arrival times of mean [1/rate], drawn from a
          per-source stream split off the run seed — memoryless bursts
          with the same long-run rate *)

(** How an injected chunk reaches the other nodes. *)
type dissemination =
  | Flood  (** every node re-sends to all neighbours: O(2m) messages per chunk *)
  | Trees
      (** each chunk rides one of the source's ⌊k/2⌋ packed edge-disjoint
          spanning trees ({!Graph_core.Tree_pack}), striped round-robin:
          n−1 messages per chunk, ~1/⌊k/2⌋ of the flood load per link,
          flood fallback on dead tree edges ({!Flood.Trees}) *)
  | Gossip
      (** random fanout-(k−1) push with a log₂(n)+4 TTL — probabilistic
          coverage, the randomized baseline *)

type t = {
  arrival : arrival;
  dissemination : dissemination;  (** how chunks spread; default {!Flood} *)
  sources : int list;
      (** explicit origin nodes; [[]] delegates to [source_count] *)
  source_count : int;
      (** when [sources = []]: this many origins spread evenly over the
          vertex range *)
  chunks_per_source : int;  (** chunks each source injects *)
  rate : float;  (** chunks per time unit, per source *)
}

val default : t
(** 4 evenly-spread sources, 8 chunks each, periodic at rate 0.05
    (one chunk per source every 20 time units), flooded. *)

val with_arrival : arrival -> t -> t

val with_dissemination : dissemination -> t -> t

val with_sources : int list -> t -> t
(** Pin the origin nodes explicitly. *)

val with_source_count : int -> t -> t
(** Use [count] evenly-spread origins (clears any explicit sources). *)

val with_chunks_per_source : int -> t -> t

val with_rate : float -> t -> t

val resolve_sources : t -> n:int -> int list
(** The actual origin nodes for an [n]-vertex run: [sources] verbatim
    when non-empty, else [i * n / source_count] for each
    [i < source_count]. *)

val validate : t -> n:int -> (unit, string) result
(** Structural validity against an [n]-vertex topology: positive finite
    rate, at least one chunk, sources in range and distinct (or a
    satisfiable [source_count]). The driver calls this and raises
    [Invalid_argument] on [Error]; CLIs can call it first for a clean
    diagnostic. *)

val arrival_name : arrival -> string
(** ["periodic"] / ["poisson"] — the names used on every surface
    (flags, JSON, docs). *)

val arrival_of_string : string -> (arrival, string) result

val dissemination_name : dissemination -> string
(** ["flood"] / ["trees"] / ["gossip"] — the names used on every
    surface (flags, JSON, docs). *)

val dissemination_of_string : string -> (dissemination, string) result
