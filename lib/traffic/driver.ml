module Csr = Graph_core.Csr
module Prng = Graph_core.Prng
module Tree_pack = Graph_core.Tree_pack
module Sim = Netsim.Sim
module Network = Netsim.Network
module Env = Flood.Env

type result = {
  workload : Workload.t;
  sources : int list;
  chunks_injected : int;
  chunks_skipped : int;
  deliveries : int;
  wire_messages : int;
  dropped_queue : int;
  dropped_link : int;
  dropped_crash : int;
  dropped_random : int;
  duration : float;
  throughput : float;
  delivery_fraction : float;
  all_covered : bool;
  p50_delay : float;
  p95_delay : float;
  p99_delay : float;
  max_delay : float;
  max_queue_backlog : int;
  hot_links : (int * int * int) list;
  tree_fallbacks : int;
  tree_fallback_bursts : int;
  recovery_time : float;
  epochs_applied : int;
  restripe_patched : int;
  restripe_repacked : int;
  control_messages : int;
}

(* same convention as Runner: smallest sample at or above the rank *)
let percentile_of sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    sorted.(min (n - 1) (rank - 1))
  end

(* the dedup table is one byte per (chunk, node) pair; refuse workloads
   that would need more than 256 MB of it *)
let max_pairs = 1 lsl 28

(* The dedup table is recycled across runs instead of reallocated:
   bench loops and SLO sweeps run thousands of workloads over the same
   topology, and a fresh multi-megabyte [Bytes] per run is pure GC
   pressure. One buffer parks in an [Atomic]; a run exchanges it out
   (so concurrent runs degrade to allocating, never share), clears only
   the prefix it needs, and parks it back when done. Cleared prefix +
   identical indexing = byte-identical results to a fresh buffer. *)
let scratch = Atomic.make Bytes.empty

let take_scratch size =
  let b = Atomic.exchange scratch Bytes.empty in
  if Bytes.length b >= size then begin
    Bytes.fill b 0 size '\000';
    b
  end
  else Bytes.make size '\000'

let give_scratch b = Atomic.set scratch b

(* Tree packings are a per-(topology, source) setup cost; the cache
   makes re-running workloads on the same frozen snapshot — the bench
   and CLI steady state — pay it once, like [Overlay.Cert]'s
   certificate reuse. Guarded because the cache outlives any one run. *)
let tree_cache = Tree_pack.Cache.create ()

let tree_cache_mutex = Mutex.create ()

(* dedup bits: bit 0 = first delivery happened, bit 1 = a fallback
   flood copy was relayed (Trees mode only; see [Flood.Trees]) *)
let bit_delivered = 1

let bit_flooded = 2

let run_csr_env ~env ?plan ?reconfig ~csr ~(workload : Workload.t) () =
  let n = Csr.n csr in
  (match Workload.validate workload ~n with
  | Error e -> invalid_arg ("Traffic.run: " ^ e)
  | Ok () -> ());
  let sources = Workload.resolve_sources workload ~n in
  List.iter
    (fun s ->
      if List.mem s env.Env.crashed then
        invalid_arg (Printf.sprintf "Traffic.run: source %d is crashed at t = 0" s))
    sources;
  (match plan with
  | Some p -> (
      match Chaos.Plan.validate csr p with
      | Error e -> invalid_arg ("Traffic.run: invalid plan: " ^ e)
      | Ok () -> ())
  | None -> ());
  (match reconfig with
  | Some rc ->
      if rc.Reconfig.union_n <> n then
        invalid_arg "Traffic.run: reconfig union_n does not match the snapshot";
      (match Reconfig.validate rc ~sources with
      | Error e -> invalid_arg ("Traffic.run: invalid reconfig: " ^ e)
      | Ok () -> ())
  | None -> ());
  let nsources = List.length sources in
  let chunks = workload.Workload.chunks_per_source in
  let total = nsources * chunks in
  if total > max_pairs / n then
    invalid_arg
      (Printf.sprintf "Traffic.run: %d chunks x %d nodes exceeds the dedup budget (2^28 pairs)"
         total n);
  (* precomputed injection schedule: one rng stream per source, split
     off the run seed in source order, so the schedule depends only on
     (seed, workload) — never on engine or execution order *)
  let src_of = Array.make total 0 in
  let inject_time = Array.make total 0.0 in
  let root = Prng.create ~seed:(Env.seed_value env lxor 0x74726166 (* "traf" *)) in
  List.iteri
    (fun si src ->
      let r = Prng.split root in
      let t = ref 0.0 in
      for j = 0 to chunks - 1 do
        (match workload.Workload.arrival with
        | Workload.Periodic -> t := float_of_int (j + 1) /. workload.Workload.rate
        | Workload.Poisson ->
            t := !t +. Prng.exponential r ~mean:(1.0 /. workload.Workload.rate));
        let g = (si * chunks) + j in
        src_of.(g) <- src;
        inject_time.(g) <- !t
      done)
    sources;
  let sim = Env.sim_of env in
  let net : int Network.t = Env.network_of_csr env ~sim ~csr in
  (* Live-view state a reconfiguration timeline mutates mid-run.
     Without one, these stay all-true/zero and every code path below
     reduces to the static behaviour: same obligations, same packs. *)
  let member = Array.make n true in
  let last_join = Array.make n 0.0 in
  let active = Array.make (Csr.degree_sum csr) true in
  let set_active u v b =
    active.(Csr.edge_index csr u v) <- b;
    active.(Csr.edge_index csr v u) <- b
  in
  List.iter (fun v -> Network.crash net v) env.Env.crashed;
  List.iter (fun (u, v) -> Network.fail_link net u v) env.Env.failed_links;
  (match reconfig with
  | Some rc ->
      Array.blit rc.Reconfig.member0 0 member 0 n;
      for v = 0 to n - 1 do
        if not member.(v) then begin
          last_join.(v) <- infinity;
          Network.crash net v
        end
      done;
      List.iter
        (fun (u, v) ->
          Network.fail_link net u v;
          set_active u v false)
        rc.Reconfig.absent0
  | None -> ());
  (match env.Env.prepare with Some { Env.prepare } -> prepare net | None -> ());
  (match plan with Some p -> Chaos.Exec.install net p | None -> ());
  let obs = env.Env.obs in
  let obs_on = Obs.Registry.enabled obs in
  let h_delay =
    if obs_on then Some (Obs.Registry.histogram obs "traffic.delay" ~bounds:Obs.Registry.time_bounds)
    else None
  in
  (* per-(chunk, node) first-delivery flags, per-chunk progress *)
  let seen = take_scratch (total * n) in
  let delivered_count = Array.make total 0 in
  let last_delivery = Array.make total 0.0 in
  let injected = Array.make total false in
  let skipped = ref 0 in
  let delays = ref (Array.make 1024 0.0) in
  let ndelays = ref 0 in
  let push d =
    if !ndelays = Array.length !delays then begin
      let grown = Array.make (2 * Array.length !delays) 0.0 in
      Array.blit !delays 0 grown 0 !ndelays;
      delays := grown
    end;
    !delays.(!ndelays) <- d;
    incr ndelays
  in
  let record chunk =
    delivered_count.(chunk) <- delivered_count.(chunk) + 1;
    let now = Sim.now sim in
    last_delivery.(chunk) <- now;
    let d = now -. inject_time.(chunk) in
    push d;
    match h_delay with Some h -> Obs.Registry.observe h d | None -> ()
  in
  let fallbacks = ref 0 and fallback_bursts = ref 0 in
  let epochs_applied = ref 0 in
  let restripe_patched = ref 0 and restripe_repacked = ref 0 in
  (* Installed by the Trees branch when a reconfig timeline is present;
     the other strategies stream on the raw links, so for them an epoch
     commit only flips memberships. *)
  let restripe : (Reconfig.epoch -> unit) ref = ref (fun _ -> ()) in
  (* Strategy dispatch: build the delivery handler and return the
     per-chunk injection sender. All three share the dedup table and
     delay accounting; only the forwarding rule differs. The handler
     lands in a ref so the control-plane wrapper below can interpose
     without each branch knowing about it. *)
  let data_recv : (dst:int -> src:int -> int -> unit) ref =
    ref (fun ~dst:_ ~src:_ _ -> ())
  in
  let set_recv f = data_recv := f in
  let inject_send : int -> int -> unit =
    match workload.Workload.dissemination with
    | Workload.Flood ->
        (* every first delivery re-floods to all neighbours *)
        set_recv (fun ~dst ~src chunk ->
            let idx = (chunk * n) + dst in
            if Bytes.unsafe_get seen idx = '\000' then begin
              Bytes.unsafe_set seen idx '\001';
              record chunk;
              Network.send_neighbors_int net ~src:dst ~except:src chunk
            end);
        fun g src -> Network.send_neighbors_int net ~src ~except:(-1) g
    | Workload.Trees ->
        (* chunk j of source i rides tree (j mod count) of source i's
           packing — round-robin striping, so each packed tree carries
           ~1/count of the stream and no single link sees every chunk.
           The payload word carries the chunk id and Flood.Trees's
           escalation flag; a flagged copy is relayed at most once per
           (chunk, node) even after a tree delivery (bit 1), which is
           what lets the fallback flood get past already-covered nodes
           to the subtree behind a dead edge. *)
        let packs =
          match reconfig with
          | None ->
              let protect m f =
                Mutex.lock m;
                Fun.protect ~finally:(fun () -> Mutex.unlock m) f
              in
              protect tree_cache_mutex (fun () ->
                  Tree_pack.Cache.get_all ?pool:env.Env.pool tree_cache csr ~sources)
          | Some rc ->
              (* the union snapshot is this run's private topology — the
                 global cache would only thrash on it; masked packs are
                 built here and re-striped in place at each commit *)
              Tree_pack.pack_all ?pool:env.Env.pool ?count:rc.Reconfig.tree_count csr ~member
                ~usable:(fun e -> active.(e))
                ~sources
        in
        (match reconfig with
        | None -> ()
        | Some rc ->
            let srcs = Array.of_list sources in
            let usable e = active.(e) in
            restripe :=
              fun (ep : Reconfig.epoch) ->
                Array.iteri
                  (fun i pk ->
                    let fresh () =
                      incr restripe_repacked;
                      packs.(i) <-
                        Tree_pack.pack ?count:rc.Reconfig.tree_count csr ~member ~usable
                          ~source:srcs.(i)
                    in
                    if ep.Reconfig.repack then fresh ()
                    else
                      match Tree_pack.patch pk csr ~member ~usable () with
                      | Some p ->
                          incr restripe_patched;
                          packs.(i) <- p
                      | None -> fresh ())
                  packs);
        let tree_of chunk =
          (chunk mod chunks) mod Tree_pack.count packs.(chunk / chunks)
        in
        (* Escalation accounting. Every forward that escalates is a
           burst, but the same dead edge escalates once per chunk
           striped onto its tree — so [tree_fallbacks] dedups bursts by
           (source, tree, node): the number of distinct escalation
           points discovered, which is what the fault actually looks
           like in the topology. *)
        (* re-striping may later reach the requested count even where the
           initial masks forced a back-off, so size the escalation table
           for the request, not just the t = 0 packs *)
        let maxtrees =
          let requested =
            match reconfig with
            | None -> 1
            | Some rc -> (
                match rc.Reconfig.tree_count with
                | Some c -> c
                | None -> Tree_pack.default_count csr)
          in
          Array.fold_left (fun a p -> max a (Tree_pack.count p)) (max 1 requested) packs
        in
        let esc_seen = Bytes.make (nsources * maxtrees * n) '\000' in
        let note_escalation chunk node =
          incr fallback_bursts;
          let key = ((((chunk / chunks) * maxtrees) + tree_of chunk) * n) + node in
          if Bytes.unsafe_get esc_seen key = '\000' then begin
            Bytes.unsafe_set esc_seen key '\001';
            incr fallbacks
          end
        in
        let mark idx bits b = Bytes.unsafe_set seen idx (Char.unsafe_chr (b lor bits)) in
        set_recv (fun ~dst ~src payload ->
            let chunk = Flood.Trees.chunk_of payload in
            let idx = (chunk * n) + dst in
            let b = Char.code (Bytes.unsafe_get seen idx) in
            if Flood.Trees.is_flood payload then begin
              if b land bit_delivered = 0 then begin
                mark idx (bit_delivered lor bit_flooded) b;
                record chunk;
                Network.send_neighbors_int net ~src:dst ~except:src payload
              end
              else if b land bit_flooded = 0 then begin
                mark idx bit_flooded b;
                Network.send_neighbors_int net ~src:dst ~except:src payload
              end
            end
            else if b land bit_delivered = 0 then begin
              mark idx bit_delivered b;
              record chunk;
              let pack = packs.(chunk / chunks) in
              if
                Flood.Trees.forward ~net ~pack ~tree:(tree_of chunk) ~node:dst ~parent:src
                  ~chunk
                = 1
              then begin
                note_escalation chunk dst;
                mark idx bit_flooded (Char.code (Bytes.unsafe_get seen idx))
              end
            end);
        fun g src ->
          let pack = packs.(g / chunks) in
          if Flood.Trees.forward ~net ~pack ~tree:(tree_of g) ~node:src ~parent:(-1) ~chunk:g = 1
          then begin
            note_escalation g src;
            let idx = (g * n) + src in
            mark idx bit_flooded (Char.code (Bytes.unsafe_get seen idx))
          end
    | Workload.Gossip ->
        (* push gossip at the snapshot's min-degree fanout with the
           standard log2(n)+4 TTL: the randomized baseline, riding the
           same int plane (payload = chunk * (ttl_limit+1) + ttl) *)
        let lo, nbr =
          match Csr.storage csr with
          | Csr.Ints { offsets; neighbors } ->
              ((fun v -> offsets.(v)), fun i -> neighbors.(i))
          | Csr.Big { offsets; neighbors } ->
              ( (fun v -> Bigarray.Array1.get offsets v),
                fun i -> Bigarray.Array1.get neighbors i )
        in
        let fanout =
          let md = ref max_int in
          for v = 0 to n - 1 do
            let d = lo (v + 1) - lo v in
            if d < !md then md := d
          done;
          max 1 !md
        in
        let ttl_limit = Flood.Gossip.default_ttl ~n in
        let base = ttl_limit + 1 in
        let rng = Sim.fork_rng sim in
        let push_gossip v ~chunk ~ttl =
          let deg = lo (v + 1) - lo v in
          if deg > 0 then begin
            let picks = min fanout deg in
            let chosen = Prng.sample_without_replacement rng ~k:picks ~n:deg in
            List.iter
              (fun i ->
                let e = lo v + i in
                Network.send_int net ~src:v ~dst:(nbr e) ~eidx:e ((chunk * base) + ttl))
              chosen
          end
        in
        set_recv (fun ~dst ~src:_ payload ->
            let chunk = payload / base in
            let ttl = payload mod base in
            let idx = (chunk * n) + dst in
            if Bytes.unsafe_get seen idx = '\000' then begin
              Bytes.unsafe_set seen idx '\001';
              record chunk;
              if ttl > 1 then push_gossip dst ~chunk ~ttl:(ttl - 1)
            end);
        fun g src -> push_gossip src ~chunk:g ~ttl:ttl_limit
  in
  (* Control plane: when the network has priority bands, each epoch
     commit floods a band-0 notice through the live topology so the
     reconfiguration news overtakes the queued data backlog — the
     delivered copy is what a real deployment would act on; here it is
     accounted (band-0 [sent]) and deduped per (epoch, node). Payloads
     at or above [control_base] are reserved for it, far beyond any
     chunk encoding. *)
  let control_base = 1 lsl 40 in
  let ctrl_emit = ref (fun _ -> ()) in
  (match reconfig with
  | Some rc when rc.Reconfig.epochs <> [] && Network.bands net > 1 ->
      let nep = Reconfig.epoch_count rc in
      let ctrl_seen = Bytes.make (nep * n) '\000' in
      let relay node except ep =
        let idx = (ep * n) + node in
        if Bytes.unsafe_get ctrl_seen idx = '\000' then begin
          Bytes.unsafe_set ctrl_seen idx '\001';
          let save = Network.send_band net in
          Network.set_send_band net 0;
          Network.send_neighbors_int net ~src:node ~except (control_base + ep);
          Network.set_send_band net save
        end
      in
      Network.set_int_receiver net (fun ~dst ~src payload ->
          if payload >= control_base then relay dst src (payload - control_base)
          else !data_recv ~dst ~src payload);
      ctrl_emit :=
        fun ep ->
          (match List.find_opt (fun s -> not (Network.is_crashed net s)) sources with
          | Some origin -> relay origin (-1) ep
          | None -> ())
  | _ -> Network.set_int_receiver net !data_recv);
  (match reconfig with
  | None -> ()
  | Some rc ->
      List.iter
        (fun (ep : Reconfig.epoch) ->
          Sim.schedule_at sim ~time:ep.Reconfig.at (fun () ->
              List.iter
                (fun v ->
                  Network.crash net v;
                  member.(v) <- false)
                ep.Reconfig.leaves;
              List.iter
                (fun (u, v) ->
                  Network.fail_link net u v;
                  set_active u v false)
                ep.Reconfig.link_down;
              List.iter
                (fun (u, v) ->
                  Network.restore_link net u v;
                  set_active u v true)
                ep.Reconfig.link_up;
              List.iter
                (fun v ->
                  Network.recover net v;
                  member.(v) <- true;
                  last_join.(v) <- ep.Reconfig.at)
                ep.Reconfig.joins;
              incr epochs_applied;
              !restripe ep;
              !ctrl_emit ep.Reconfig.index))
        rc.Reconfig.epochs);
  for g = 0 to total - 1 do
    Sim.schedule_at sim ~time:inject_time.(g) (fun () ->
        let src = src_of.(g) in
        (* a chunk whose source a chaos plan has crashed by its arrival
           instant is simply never offered — counted, not raised *)
        if Network.is_crashed net src then incr skipped
        else begin
          injected.(g) <- true;
          Bytes.unsafe_set seen ((g * n) + src) '\001';
          delivered_count.(g) <- 1;
          last_delivery.(g) <- inject_time.(g);
          inject_send g src
        end)
  done;
  Sim.run sim;
  let duration = Sim.now sim in
  let alive = Network.alive_mask net in
  let chunks_injected = total - !skipped in
  (* Coverage against the nodes alive at the end of the run. Under a
     reconfig timeline a node is only obligated for chunks injected at
     or after its join instant — a joiner never saw the stream's past,
     and holding that against delivery would punish growth. With no
     timeline [last_join] is all zero and this is the static count. *)
  let covers = Array.make total false in
  let covered_pairs = ref 0 in
  let obligated = ref 0 in
  for g = 0 to total - 1 do
    if injected.(g) then begin
      let full = ref true in
      for v = 0 to n - 1 do
        if alive.(v) && last_join.(v) <= inject_time.(g) then begin
          incr obligated;
          if Bytes.unsafe_get seen ((g * n) + v) <> '\000' then incr covered_pairs
          else full := false
        end
      done;
      covers.(g) <- !full
    end
  done;
  let delivery_fraction =
    if !obligated = 0 then 0.0 else float_of_int !covered_pairs /. float_of_int !obligated
  in
  let all_covered =
    chunks_injected > 0
    && Array.for_all (fun c -> c) (Array.init total (fun g -> (not injected.(g)) || covers.(g)))
  in
  (* recovery time: among chunks injected after the last event of the
     chaos plan and the churn trace combined, the earliest one to fully
     cover the survivors, measured from the last degrading event (a
     crash, a downed link, a lossy period, a leave) — how long the
     stream takes to run clean again once the faults stop coming *)
  let recovery_time =
    let plan_evs = match plan with Some p -> Chaos.Plan.events p | None -> [] in
    let degrade (e : Chaos.Plan.timed) =
      match e.Chaos.Plan.event with
      | Chaos.Plan.Crash _ | Chaos.Plan.Link_down _ | Chaos.Plan.Partition _ -> true
      | Chaos.Plan.Loss_rate r -> r > 0.0
      | Chaos.Plan.Recover _ | Chaos.Plan.Link_up _ | Chaos.Plan.Heal -> false
    in
    let ep_list = match reconfig with Some rc -> rc.Reconfig.epochs | None -> [] in
    let event_times =
      List.map (fun (e : Chaos.Plan.timed) -> e.Chaos.Plan.at) plan_evs
      @ List.map (fun (e : Reconfig.epoch) -> e.Reconfig.at) ep_list
    in
    let degrade_times =
      List.filter_map
        (fun (e : Chaos.Plan.timed) -> if degrade e then Some e.Chaos.Plan.at else None)
        plan_evs
      @ List.filter_map
          (fun (e : Reconfig.epoch) ->
            if e.Reconfig.leaves <> [] || e.Reconfig.link_down <> [] then Some e.Reconfig.at
            else None)
          ep_list
    in
    if degrade_times = [] then -1.0
    else begin
      let last_event = List.fold_left max 0.0 event_times in
      let last_degrade = List.fold_left max (-1.0) degrade_times in
      let best = ref infinity in
      for g = 0 to total - 1 do
        if
          injected.(g) && covers.(g)
          && inject_time.(g) >= last_event
          && last_delivery.(g) < !best
        then best := last_delivery.(g)
      done;
      if !best = infinity then -1.0 else !best -. last_degrade
    end
  in
  give_scratch seen;
  let sorted = Array.sub !delays 0 !ndelays in
  Array.sort compare sorted;
  let stats = Network.stats net in
  let throughput =
    if duration > 0.0 then float_of_int !ndelays /. duration else 0.0
  in
  let control_messages =
    if Network.bands net > 1 then (Network.band_stats net ~band:0).Network.sent else 0
  in
  if obs_on then begin
    Obs.Registry.add (Obs.Registry.counter obs "traffic.chunks") chunks_injected;
    Obs.Registry.add (Obs.Registry.counter obs "traffic.deliveries") !ndelays;
    Obs.Registry.set_max (Obs.Registry.gauge obs "traffic.throughput") throughput;
    (* cache-thrash signal: entries the shared tree cache has ever
       discarded — a snapshot swap mid-workload shows up here *)
    Obs.Registry.set_max
      (Obs.Registry.gauge obs "traffic.tree_cache_evictions")
      (float_of_int (Tree_pack.Cache.evictions tree_cache))
  end;
  {
    workload;
    sources;
    chunks_injected;
    chunks_skipped = !skipped;
    deliveries = !ndelays;
    wire_messages = stats.Network.sent;
    dropped_queue = stats.Network.dropped_queue;
    dropped_link = stats.Network.dropped_link;
    dropped_crash = stats.Network.dropped_crash;
    dropped_random = stats.Network.dropped_random;
    duration;
    throughput;
    delivery_fraction;
    all_covered;
    p50_delay = percentile_of sorted 0.50;
    p95_delay = percentile_of sorted 0.95;
    p99_delay = percentile_of sorted 0.99;
    max_delay = (if !ndelays = 0 then 0.0 else sorted.(!ndelays - 1));
    max_queue_backlog = Network.max_queue_backlog net;
    hot_links = Network.hottest_links net ~max:5;
    tree_fallbacks = !fallbacks;
    tree_fallback_bursts = !fallback_bursts;
    recovery_time;
    epochs_applied = !epochs_applied;
    restripe_patched = !restripe_patched;
    restripe_repacked = !restripe_repacked;
    control_messages;
  }

let run_env ~env ?plan ?reconfig ~graph ~workload () =
  run_csr_env ~env ?plan ?reconfig ~csr:(Csr.of_graph graph) ~workload ()

let schema = "lhg-traffic/1"

(* The result body, written into a document someone else opened: the
   caller (Scenario.report_traffic, the scenario stream) owns the
   header — topology, sizes, seed — and the close; this stays a pure
   result-to-stream projection with no idea where it is embedded. *)
let emit s r =
  let module S = Obs.Stream in
  S.obj s "workload" (fun s ->
      S.str s "arrival" (Workload.arrival_name r.workload.Workload.arrival);
      S.str s "dissemination" (Workload.dissemination_name r.workload.Workload.dissemination);
      S.ints s "sources" r.sources;
      S.int s "chunks_per_source" r.workload.Workload.chunks_per_source;
      S.float s "rate" r.workload.Workload.rate);
  S.obj s "chunks" (fun s ->
      S.int s "injected" r.chunks_injected;
      S.int s "skipped" r.chunks_skipped);
  S.obj s "wire" (fun s ->
      S.int s "sent" r.wire_messages;
      S.int s "dropped_queue" r.dropped_queue;
      S.int s "dropped_link" r.dropped_link;
      S.int s "dropped_crash" r.dropped_crash;
      S.int s "dropped_random" r.dropped_random);
  S.obj s "delay" (fun s ->
      S.float s "p50" r.p50_delay;
      S.float s "p95" r.p95_delay;
      S.float s "p99" r.p99_delay;
      S.float s "max" r.max_delay);
  S.obj s "queue" (fun s ->
      S.int s "max_backlog" r.max_queue_backlog;
      S.raw s "hot_links"
        ("["
        ^ String.concat ", "
            (List.map
               (fun (src, dst, peak) ->
                 Printf.sprintf "{\"src\": %d, \"dst\": %d, \"peak\": %d}" src dst peak)
               r.hot_links)
        ^ "]"));
  S.obj s "reconfig" (fun s ->
      S.int s "epochs_applied" r.epochs_applied;
      S.int s "restripe_patched" r.restripe_patched;
      S.int s "restripe_repacked" r.restripe_repacked;
      S.int s "control_messages" r.control_messages);
  S.float s "duration" r.duration;
  S.summary s (fun s ->
      S.int s "deliveries" r.deliveries;
      S.float s "throughput" r.throughput;
      S.float s "delivery_fraction" r.delivery_fraction;
      S.bool s "all_covered" r.all_covered;
      S.int s "tree_fallbacks" r.tree_fallbacks;
      S.int s "tree_fallback_bursts" r.tree_fallback_bursts;
      S.float s "recovery_time" r.recovery_time)
