(* The traffic driver's view of a reconfiguration timeline: plain data,
   deliberately ignorant of Overlay.Controller (traffic sits below the
   overlay layer). The scenario runner pre-plays a controller trace,
   freezes the union of every epoch's edges into one CSR snapshot, and
   lowers the epochs into this schedule; the driver then replays it on
   the simulated clock while the stream runs — membership flips are
   crashes/recoveries, edge flips are link failures/restores, and each
   commit re-stripes the per-source tree packs. *)

type epoch = {
  at : float;  (** commit instant on the simulated clock; strictly increasing *)
  index : int;
  joins : int list;  (** vertices entering the membership, ascending *)
  leaves : int list;  (** vertices leaving, ascending *)
  link_up : (int * int) list;  (** union-snapshot edges entering the live topology *)
  link_down : (int * int) list;  (** live edges leaving (stay in the union snapshot) *)
  repack : bool;
      (** a rebuild-strategy epoch rewires wholesale: skip the
          incremental patch and re-pack from scratch *)
}

type t = {
  union_n : int;  (** vertex count of the union snapshot the stream runs on *)
  member0 : bool array;  (** membership at t = 0 (length [union_n]) *)
  absent0 : (int * int) list;  (** union edges not yet live at t = 0 *)
  epochs : epoch list;  (** ascending [at] *)
  tree_count : int option;
      (** trees to request per masked pack ([None] = the snapshot
          default) — pin it to the base overlay's ⌊k/2⌋ so the union
          snapshot's degrees don't inflate the stripe width *)
}

let epoch_count t = List.length t.epochs

(* a leave and a later join of the same id is legal (resize down then
   up); a source leaving is not — the driver validates that *)
let validate t ~sources =
  let n = t.union_n in
  let in_range v = v >= 0 && v < n in
  if Array.length t.member0 <> n then Error "member0 length must equal union_n"
  else begin
    let bad = ref None in
    let last_at = ref 0.0 in
    let last_index = ref (-1) in
    List.iter
      (fun e ->
        if !bad = None then begin
          if e.at <= !last_at then
            bad :=
              Some
                (if !last_index < 0 then "epoch commit times must be positive"
                 else "epoch commit times must be strictly increasing");
          if e.index <> !last_index + 1 then bad := Some "epoch indices must be consecutive from 0";
          if List.exists (fun v -> not (in_range v)) e.joins then
            bad := Some "join vertex out of the union range";
          if List.exists (fun v -> not (in_range v)) e.leaves then
            bad := Some "leave vertex out of the union range";
          if List.exists (fun s -> List.mem s e.leaves) sources then
            bad := Some "a traffic source leaves mid-run";
          last_at := e.at;
          last_index := e.index
        end)
      t.epochs;
    (match !bad with
    | None ->
        List.iter
          (fun s ->
            if not (in_range s && t.member0.(s)) then
              bad := Some (Printf.sprintf "source %d is not a member at t = 0" s))
          sources
    | Some _ -> ());
    match !bad with None -> Ok () | Some e -> Error e
  end
