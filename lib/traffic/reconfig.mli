(** A reconfiguration timeline for the traffic driver: the bridge that
    lets a sustained stream and epoch-based membership change share one
    simulated clock.

    The driver knows nothing about {!Overlay.Controller}; it consumes
    this plain schedule instead. The scenario layer pre-plays a
    controller trace, freezes the {e union} of every epoch's edge set
    into a single CSR snapshot (the one immutable topology the whole
    run needs), and lowers the committed epochs here: vertices outside
    the initial membership start crashed, edges not yet live start
    failed, and each epoch's [at] instant flips memberships
    (crash/recover), flips links (fail/restore), and re-stripes the
    per-source tree packs ({!Graph_core.Tree_pack.patch}, falling back
    to a full masked pack). *)

type epoch = {
  at : float;  (** commit instant on the simulated clock; strictly increasing *)
  index : int;  (** consecutive from 0 *)
  joins : int list;  (** vertices entering the membership, ascending *)
  leaves : int list;  (** vertices leaving, ascending *)
  link_up : (int * int) list;  (** union-snapshot edges entering the live topology *)
  link_down : (int * int) list;  (** live edges leaving (they stay in the union snapshot) *)
  repack : bool;
      (** a rebuild-strategy epoch rewires wholesale: skip the
          incremental patch, re-pack from scratch *)
}

type t = {
  union_n : int;  (** vertex count of the union snapshot the stream runs on *)
  member0 : bool array;  (** membership at t = 0 (length [union_n]) *)
  absent0 : (int * int) list;  (** union edges not yet live at t = 0 *)
  epochs : epoch list;  (** ascending [at] *)
  tree_count : int option;
      (** trees to request per masked pack ([None] = the snapshot
          default) — pin it to the base overlay's ⌊k/2⌋ so the union
          snapshot's inflated degrees don't widen the stripe *)
}

val epoch_count : t -> int

val validate : t -> sources:int list -> (unit, string) result
(** Structural checks: mask length, positive strictly-increasing commit
    times, consecutive indices, vertices in range, every source a
    member at t = 0 and never a leaver. *)
