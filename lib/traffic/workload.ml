type arrival = Periodic | Poisson

type dissemination = Flood | Trees | Gossip

type t = {
  arrival : arrival;
  dissemination : dissemination;
  sources : int list;
  source_count : int;
  chunks_per_source : int;
  rate : float;
}

let default =
  {
    arrival = Periodic;
    dissemination = Flood;
    sources = [];
    source_count = 4;
    chunks_per_source = 8;
    rate = 0.05;
  }

let with_arrival arrival t = { t with arrival }

let with_dissemination dissemination t = { t with dissemination }

let with_sources sources t = { t with sources }

let with_source_count source_count t = { t with source_count; sources = [] }

let with_chunks_per_source chunks_per_source t = { t with chunks_per_source }

let with_rate rate t = { t with rate }

let arrival_name = function Periodic -> "periodic" | Poisson -> "poisson"

let arrival_of_string = function
  | "periodic" -> Ok Periodic
  | "poisson" -> Ok Poisson
  | s -> Error (Printf.sprintf "unknown arrival process %S (expected periodic, poisson)" s)

let dissemination_name = function Flood -> "flood" | Trees -> "trees" | Gossip -> "gossip"

let dissemination_of_string = function
  | "flood" -> Ok Flood
  | "trees" -> Ok Trees
  | "gossip" -> Ok Gossip
  | s -> Error (Printf.sprintf "unknown dissemination strategy %S (expected flood, trees, gossip)" s)

(* explicit sources win; otherwise spread source_count origins evenly
   over the vertex range — i*n/count is distinct for count <= n and
   puts the origins in far-apart regions of structured topologies *)
let resolve_sources t ~n =
  match t.sources with
  | [] -> List.init t.source_count (fun i -> i * n / t.source_count)
  | l -> l

let validate t ~n =
  if not (Float.is_finite t.rate) || t.rate <= 0.0 then
    Error "rate must be a positive finite number of chunks per time unit"
  else if t.chunks_per_source < 1 then Error "chunks_per_source must be >= 1"
  else
    match t.sources with
    | [] ->
        if t.source_count < 1 then Error "source_count must be >= 1"
        else if t.source_count > n then
          Error (Printf.sprintf "source_count %d exceeds n = %d" t.source_count n)
        else Ok ()
    | l ->
        if List.exists (fun v -> v < 0 || v >= n) l then
          Error (Printf.sprintf "source out of range [0, %d)" n)
        else if List.length (List.sort_uniq compare l) <> List.length l then
          Error "duplicate sources"
        else Ok ()
