(** The sustained-traffic driver: multi-source chunk streams pushed
    through a (possibly capacity-limited) network.

    Each chunk of a {!Workload} spreads from its source on the
    network's int plane — the same zero-allocation fast path as
    {!Flood.Flooding.run_csr_env} — with per-(chunk, node) first-
    delivery dedup, under the workload's {!Workload.dissemination}
    strategy: [Flood] re-sends on every edge, [Trees] stripes chunks
    round-robin over the source's packed edge-disjoint spanning trees
    ({!Graph_core.Tree_pack} / {!Flood.Trees}, n−1 messages per chunk
    with flood fallback on dead tree edges), [Gossip] pushes to random
    neighbours under a TTL. The network half of the configuration
    (latency, loss, link capacity, queue bound/policy, engine, seed,
    static faults) comes from the {!Flood.Env}; the traffic half
    (sources, arrival process, chunk count, rate, dissemination) from
    the {!Workload}. A {!Chaos.Plan} can be scheduled mid-stream to
    measure degradation and recovery under sustained load, and a
    {!Reconfig} timeline replays controller epochs against the running
    stream: membership flips become crashes/recoveries on the union
    snapshot, link flips fail/restore wires, [Trees] packs are
    re-striped in place ({!Graph_core.Tree_pack.patch} first, full
    masked re-pack on rebuild epochs or when the patch cannot finish),
    and — when the env gives the network more than one priority band —
    each commit floods a band-0 control notice that overtakes the
    queued data backlog.

    The run is deterministic in [(env, workload, plan, reconfig)]: the
    injection schedule is precomputed from the run seed, dissemination
    rides the simulator's deterministic ordering (tree packings and
    patches are themselves deterministic, gossip draws from the sim's
    forked stream), and the result — including the [lhg-traffic/1]
    document {!emit} writes — is byte-identical across engines and
    [--jobs] counts (the domain pool only parallelises tree packing,
    whose output is pool-invariant; mid-run re-striping is always
    sequential). *)

type result = {
  workload : Workload.t;
  sources : int list;  (** resolved origin nodes, in workload order *)
  chunks_injected : int;
  chunks_skipped : int;
      (** chunks whose source was crashed at their arrival instant
          (possible only under a chaos plan) *)
  deliveries : int;  (** first deliveries at non-source nodes *)
  wire_messages : int;  (** total sends, duplicates included *)
  dropped_queue : int;  (** drop-tailed by full link FIFOs *)
  dropped_link : int;
  dropped_crash : int;
  dropped_random : int;
  duration : float;  (** virtual time when the stream drained *)
  throughput : float;  (** deliveries per virtual time unit *)
  delivery_fraction : float;
      (** delivered (alive node, chunk) pairs over obligated pairs —
          alive means alive at the end of the run *)
  all_covered : bool;  (** every injected chunk reached every survivor *)
  p50_delay : float;
      (** exact percentiles of per-delivery delay (first delivery time
          minus the chunk's injection time); source receipt is not a
          sample *)
  p95_delay : float;
  p99_delay : float;
  max_delay : float;
  max_queue_backlog : int;  (** deepest any single link FIFO ever got *)
  hot_links : (int * int * int) list;
      (** the ≤ 5 hottest directed links as [(src, dst, peak)] —
          {!Netsim.Network.hottest_links} over the run; [[]] without a
          finite capacity *)
  tree_fallbacks : int;
      (** [Trees] dissemination only: distinct escalation points — a
          (source, tree, node) where forwarding fell back to scoped
          flood because a tree edge was dead. Counted once no matter
          how many chunks stripe over the broken tree, so it equals
          the number of distinct fault sites the stream discovered
          (0 = every chunk rode its tree clean; always 0 under
          [Flood]/[Gossip]) *)
  tree_fallback_bursts : int;
      (** raw escalation events before deduplication: every forward
          that fell back, once per chunk per hop. Grows with traffic
          volume over a broken tree where {!tree_fallbacks} does not;
          [bursts >= fallbacks] always *)
  recovery_time : float;
      (** earliest full-coverage completion among chunks injected after
          the last chaos-plan or reconfig event, measured from the last
          degrading event (crash / link down / partition / positive
          loss rate / leave) — the time for the stream to run clean
          again. [-1] when there is no degrading event or no clean
          chunk afterwards. *)
  epochs_applied : int;  (** reconfig commits that fired before the stream drained *)
  restripe_patched : int;
      (** (epoch, source) re-stripes {!Graph_core.Tree_pack.patch}
          finished incrementally — on a repair-only churn trace this
          should be {e all} of them *)
  restripe_repacked : int;
      (** (epoch, source) re-stripes that fell back to a full masked
          pack: rebuild epochs, plus any patch that could not finish *)
  control_messages : int;
      (** band-0 sends (epoch-commit control floods); [0] when the env
          has a single band or no reconfig timeline *)
}

val run_env :
  env:Flood.Env.t ->
  ?plan:Chaos.Plan.t ->
  ?reconfig:Reconfig.t ->
  graph:Graph_core.Graph.t ->
  workload:Workload.t ->
  unit ->
  result
(** Run the workload to completion (the simulator drains; there is no
    horizon — finite streams always terminate). Consumes every [Env]
    field except [pool]. Registers [traffic.delay] (time bounds),
    [traffic.chunks], [traffic.deliveries], [traffic.throughput] and
    [traffic.tree_cache_evictions] into an enabled [env.obs]; the
    network adds its own [net.*] series including the [net.link_queue]
    occupancy histogram.
    @raise Invalid_argument on an invalid workload
    ({!Workload.validate}), a source crashed at t = 0, a plan that
    fails {!Chaos.Plan.validate}, a reconfig whose [union_n] differs
    from the topology or that fails {!Reconfig.validate}, or a
    workload whose dedup table would exceed 2^28 (chunk, node)
    pairs. *)

val run_csr_env :
  env:Flood.Env.t ->
  ?plan:Chaos.Plan.t ->
  ?reconfig:Reconfig.t ->
  csr:Graph_core.Csr.t ->
  workload:Workload.t ->
  unit ->
  result
(** {!run_env} directly over a frozen CSR snapshot — the million-
    message path, and the only one a [?reconfig] timeline makes sense
    on (its masks index the snapshot's edge slots). *)

val schema : string
(** ["lhg-traffic/1"]. *)

val emit : Obs.Stream.t -> result -> unit
(** Write the result body — workload, chunk/wire/delay/queue/reconfig
    sections, duration, summary — into an open stream whose header
    (topology, sizes, seed) the caller owns. Contains no wall-clock
    fields, so equal runs emit byte-identical bodies; the standalone
    [lhg-traffic/1] document is assembled by
    [Scenario.report_traffic]. *)
