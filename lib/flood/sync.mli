(** Synchronous-round flooding analysis (no simulator, no randomness).

    With unit link latency and no losses, deterministic flooding behaves
    exactly like BFS: a node first hears the message at round = hop
    distance, then forwards to every neighbour except its first parent.
    This module computes rounds and message counts in closed form from
    one BFS pass — the fast path used by the big parameter sweeps, while
    {!Flooding} cross-checks the same quantities by actual simulation. *)

type t = {
  reached : int;  (** vertices receiving the message, source included *)
  rounds : int;  (** max hop distance among reached vertices *)
  messages : int;  (** total point-to-point sends, dead targets included *)
  covers_all_alive : bool;
}

val flood_csr :
  ?workspace:Graph_core.Bfs.Workspace.t ->
  ?alive:bool array ->
  ?obs:Obs.Registry.t ->
  Graph_core.Csr.t ->
  source:int ->
  t
(** Flood from [source] over the alive part of a frozen snapshot.
    Messages sent to crashed neighbours are counted as sent (the sender
    cannot know), matching {!Flooding.run_env}'s accounting. Passing
    [?workspace] makes
    repeated calls over the same (or same-sized) topology allocation-free
    — the path used by {!Reliability}'s Monte-Carlo loops and the large
    parameter sweeps. With an enabled [?obs], the run publishes the
    [sync.rounds] histogram, [sync.reached]/[sync.messages] counters
    and per-round [Round_start]/[Round_end] spans (round r spans
    virtual time (r−1, r], its [node] field the number of vertices
    first reached in that round); the disabled default records
    nothing and allocates nothing. *)

val flood_env : env:Env.t -> Graph_core.Graph.t -> source:int -> t
(** {!flood_csr} on a one-shot snapshot of the graph, under a unified
    environment — the sole graph entry point (the legacy
    optional-argument wrapper is gone; see {!Env}): [env.crashed]
    becomes the alive mask, [env.obs] the registry. The closed-form
    analysis is deterministic and synchronous, so the latency / loss /
    seed / pool fields are ignored by construction. *)

val message_bound : Graph_core.Graph.t -> int
(** The failure-free message count: 2m − (n − 1) — every edge carries
    the payload in both directions except the n−1 first-delivery tree
    edges, which carry it once. *)
