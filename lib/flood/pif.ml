module Graph = Graph_core.Graph
module Sim = Netsim.Sim
module Network = Netsim.Network

type result = {
  informed : bool array;
  completed : bool;
  completion_detected_at : float;
  last_delivery_at : float;
  messages : int;
}

type message = Propagate | Echo

let run_env ~env ~graph ~source () =
  if env.Env.loss_rate > 0.0 then
    invalid_arg "Pif.run: loss_rate unsupported (echo accounting assumes reliable channels)";
  let crashed = env.Env.crashed in
  let obs = env.Env.obs in
  let n = Graph.n graph in
  if source < 0 || source >= n then invalid_arg "Pif.run: source out of range";
  if List.mem source crashed then invalid_arg "Pif.run: source is crashed";
  let sim = Env.sim_of env in
  let net = Env.network_of_graph env ~sim ~graph in
  let m_echoes = Obs.Registry.counter obs "pif.echoes" in
  List.iter (fun v -> Network.crash net v) crashed;
  List.iter (fun (u, v) -> Network.fail_link net u v) env.Env.failed_links;
  (match env.Env.prepare with Some { Env.prepare } -> prepare net | None -> ());
  let informed = Array.make n false in
  let parent = Array.make n (-1) in
  let pending = Array.make n 0 in
  let completed = ref false in
  let completion_at = ref (-1.0) in
  let last_delivery = ref 0.0 in
  let close_node v =
    (* v's subtree has fully echoed *)
    if v = source then begin
      completed := true;
      completion_at := Sim.now sim
    end
    else Network.send net ~src:v ~dst:parent.(v) Echo
  in
  let csr = Network.csr net in
  let propagate_from v ~except =
    let sent = ref 0 in
    Graph_core.Csr.iter_neighbors csr v (fun w ->
        if w <> except then begin
          Network.send net ~src:v ~dst:w Propagate;
          incr sent
        end);
    pending.(v) <- !sent;
    if !sent = 0 then close_node v
  in
  Network.set_receiver net (fun ~dst ~src msg ->
      match msg with
      | Propagate ->
          if informed.(dst) then
            (* already part of the wave: answer immediately *)
            Network.send net ~src:dst ~dst:src Echo
          else begin
            informed.(dst) <- true;
            last_delivery := Sim.now sim;
            parent.(dst) <- src;
            propagate_from dst ~except:src
          end
      | Echo ->
          Obs.Registry.incr m_echoes;
          pending.(dst) <- pending.(dst) - 1;
          if pending.(dst) = 0 && informed.(dst) then close_node dst);
  informed.(source) <- true;
  propagate_from source ~except:(-1);
  Sim.run sim;
  (if Obs.Registry.enabled obs then begin
     Obs.Registry.set (Obs.Registry.gauge obs "pif.completed") (if !completed then 1.0 else 0.0);
     Obs.Registry.set (Obs.Registry.gauge obs "pif.completion_detected_at") !completion_at;
     Obs.Registry.set (Obs.Registry.gauge obs "pif.last_delivery_at") !last_delivery
   end);
  {
    informed;
    completed = !completed;
    completion_detected_at = !completion_at;
    last_delivery_at = !last_delivery;
    messages = (Network.stats net).Network.sent;
  }
