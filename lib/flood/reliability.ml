module Graph = Graph_core.Graph
module Prng = Graph_core.Prng

type estimate = { probability : float; lo : float; hi : float; trials : int }

let wilson_interval ~successes ~trials =
  if trials <= 0 then invalid_arg "Reliability.wilson_interval: no trials";
  let z = 1.96 in
  let nf = float_of_int trials in
  let p = float_of_int successes /. nf in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. nf) in
  let centre = p +. (z2 /. (2.0 *. nf)) in
  let spread = z *. sqrt ((p *. (1.0 -. p) /. nf) +. (z2 /. (4.0 *. nf *. nf))) in
  (max 0.0 ((centre -. spread) /. denom), min 1.0 ((centre +. spread) /. denom))

let estimate_of ~successes ~trials =
  let lo, hi = wilson_interval ~successes ~trials in
  { probability = float_of_int successes /. float_of_int trials; lo; hi; trials }

let publish obs ~successes e =
  if Obs.Registry.enabled obs then begin
    Obs.Registry.add (Obs.Registry.counter obs "reliability.successes") successes;
    Obs.Registry.add (Obs.Registry.counter obs "reliability.trials") e.trials;
    Obs.Registry.set (Obs.Registry.gauge obs "reliability.probability") e.probability;
    Obs.Registry.set (Obs.Registry.gauge obs "reliability.lo") e.lo;
    Obs.Registry.set (Obs.Registry.gauge obs "reliability.hi") e.hi
  end

let draw_failures rng ~n ~source ~p alive =
  Array.fill alive 0 n true;
  for v = 0 to n - 1 do
    if v <> source && Prng.float rng 1.0 < p then alive.(v) <- false
  done

let flood_delivery ?(obs = Obs.Registry.nil) ~graph ~source ~node_failure_prob ~trials ~seed () =
  if trials < 1 then invalid_arg "Reliability.flood_delivery: trials < 1";
  if node_failure_prob < 0.0 || node_failure_prob > 1.0 then
    invalid_arg "Reliability.flood_delivery: probability outside [0,1]";
  let n = Graph.n graph in
  let rng = Prng.create ~seed in
  let alive = Array.make n true in
  let successes = ref 0 in
  (* One frozen snapshot and one BFS workspace across all trials: the
     per-trial work is a flat-array BFS with zero allocation. *)
  let csr = Graph_core.Csr.of_graph graph in
  let ws = Graph_core.Bfs.Workspace.create () in
  for _ = 1 to trials do
    draw_failures rng ~n ~source ~p:node_failure_prob alive;
    let r = Sync.flood_csr ~workspace:ws ~alive csr ~source in
    if r.Sync.covers_all_alive then incr successes
  done;
  let e = estimate_of ~successes:!successes ~trials in
  publish obs ~successes:!successes e;
  e

let gossip_delivery ?(obs = Obs.Registry.nil) ~graph ~source ~fanout ~node_failure_prob ~trials
    ~seed () =
  if trials < 1 then invalid_arg "Reliability.gossip_delivery: trials < 1";
  let n = Graph.n graph in
  let rng = Prng.create ~seed in
  let alive = Array.make n true in
  let ttl = Gossip.default_ttl ~n in
  let successes = ref 0 in
  for t = 1 to trials do
    draw_failures rng ~n ~source ~p:node_failure_prob alive;
    let crashed = ref [] in
    Array.iteri (fun v live -> if not live then crashed := v :: !crashed) alive;
    let r = Gossip.run ~crashed:!crashed ~seed:(seed + (7919 * t)) ~graph ~source ~fanout ~ttl () in
    if r.Gossip.coverage_of_alive >= 1.0 then incr successes
  done;
  let e = estimate_of ~successes:!successes ~trials in
  publish obs ~successes:!successes e;
  e
