module Graph = Graph_core.Graph
module Prng = Graph_core.Prng

type estimate = { probability : float; lo : float; hi : float; trials : int }

let wilson_interval ~successes ~trials =
  if trials <= 0 then invalid_arg "Reliability.wilson_interval: no trials";
  let z = 1.96 in
  let nf = float_of_int trials in
  let p = float_of_int successes /. nf in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. nf) in
  let centre = p +. (z2 /. (2.0 *. nf)) in
  let spread = z *. sqrt ((p *. (1.0 -. p) /. nf) +. (z2 /. (4.0 *. nf *. nf))) in
  (max 0.0 ((centre -. spread) /. denom), min 1.0 ((centre +. spread) /. denom))

let estimate_of ~successes ~trials =
  if trials <= 0 then invalid_arg "Reliability.estimate_of: trials must be positive";
  if successes < 0 || successes > trials then
    invalid_arg "Reliability.estimate_of: successes outside [0, trials]";
  let lo, hi = wilson_interval ~successes ~trials in
  { probability = float_of_int successes /. float_of_int trials; lo; hi; trials }

let publish obs ~successes e =
  if Obs.Registry.enabled obs then begin
    Obs.Registry.add (Obs.Registry.counter obs "reliability.successes") successes;
    Obs.Registry.add (Obs.Registry.counter obs "reliability.trials") e.trials;
    Obs.Registry.set (Obs.Registry.gauge obs "reliability.probability") e.probability;
    Obs.Registry.set (Obs.Registry.gauge obs "reliability.lo") e.lo;
    Obs.Registry.set (Obs.Registry.gauge obs "reliability.hi") e.hi
  end

let draw_failures rng ~n ~source ~p alive =
  Array.fill alive 0 n true;
  for v = 0 to n - 1 do
    if v <> source && Prng.float rng 1.0 < p then alive.(v) <- false
  done

(* Trials are cut into fixed-size shards, one splitmix stream per shard
   derived from the root seed by deterministic splitting. The shard
   grid and every shard's stream depend only on (seed, trials) — never
   on the domain count — and successes are an order-independent integer
   sum, so the estimate is bit-identical whether the shards run
   sequentially or fan out over any number of domains. *)
let shard_size = 512

let flood_delivery ?(obs = Obs.Registry.nil) ?pool ~graph ~source ~node_failure_prob ~trials
    ~seed () =
  if trials < 1 then invalid_arg "Reliability.flood_delivery: trials < 1";
  if node_failure_prob < 0.0 || node_failure_prob > 1.0 then
    invalid_arg "Reliability.flood_delivery: probability outside [0,1]";
  let n = Graph.n graph in
  (* One frozen snapshot shared by every domain; one BFS workspace and
     one alive mask per domain, so the per-trial work stays a
     flat-array BFS with zero allocation. *)
  let csr = Graph_core.Csr.of_graph graph in
  let nshards = (trials + shard_size - 1) / shard_size in
  let root = Prng.create ~seed in
  let rngs = Array.init nshards (fun _ -> Prng.split root) in
  let per_shard = Array.make nshards 0 in
  let domains = match pool with Some p -> Par.Pool.size p | None -> 1 in
  let scratch =
    Array.init domains (fun _ -> (Graph_core.Bfs.Workspace.create (), Array.make n true))
  in
  let run_shard ~worker s =
    let ws, alive = scratch.(worker) in
    let rng = rngs.(s) in
    let count = min shard_size (trials - (s * shard_size)) in
    let succ = ref 0 in
    for _ = 1 to count do
      draw_failures rng ~n ~source ~p:node_failure_prob alive;
      let r = Sync.flood_csr ~workspace:ws ~alive csr ~source in
      if r.Sync.covers_all_alive then incr succ
    done;
    per_shard.(s) <- !succ
  in
  (match pool with
  | Some p when Par.Pool.size p > 1 -> Par.Pool.parallel_for ~chunk:1 p ~lo:0 ~hi:nshards run_shard
  | _ ->
      for s = 0 to nshards - 1 do
        run_shard ~worker:0 s
      done);
  let successes = Array.fold_left ( + ) 0 per_shard in
  let e = estimate_of ~successes ~trials in
  publish obs ~successes e;
  e

let gossip_delivery ?(obs = Obs.Registry.nil) ~graph ~source ~fanout ~node_failure_prob ~trials
    ~seed () =
  if trials < 1 then invalid_arg "Reliability.gossip_delivery: trials < 1";
  let n = Graph.n graph in
  let rng = Prng.create ~seed in
  let alive = Array.make n true in
  let ttl = Gossip.default_ttl ~n in
  let successes = ref 0 in
  for t = 1 to trials do
    draw_failures rng ~n ~source ~p:node_failure_prob alive;
    let crashed = ref [] in
    Array.iteri (fun v live -> if not live then crashed := v :: !crashed) alive;
    let env = Env.default |> Env.with_crashed !crashed |> Env.with_seed (seed + (7919 * t)) in
    let r = Gossip.run_env ~env ~graph ~source ~fanout ~ttl () in
    if r.Gossip.coverage_of_alive >= 1.0 then incr successes
  done;
  let e = estimate_of ~successes:!successes ~trials in
  publish obs ~successes:!successes e;
  e
