(** Concurrent multi-message flooding.

    Real dissemination systems flood many payloads at once from many
    origins; duplicate suppression is per payload id. This module runs a
    whole publication schedule through one simulation, so message counts
    and completion times reflect the interleaving (shared links, shared
    failures) rather than isolated runs. *)

type publication = {
  origin : int;
  inject_time : float;
  payload_id : int;  (** distinct per publication *)
}

type message_stats = {
  payload_id : int;
  origin : int;
  delivered_count : int;  (** nodes that received it, origin included *)
  completion : float;  (** last first-delivery time; injection-relative *)
  covers_all_alive : bool;
}

type result = {
  per_message : message_stats list;  (** in payload_id order *)
  total_messages : int;  (** network sends across all payloads *)
  all_covered : bool;
}

val run_env :
  env:Env.t -> graph:Graph_core.Graph.t -> publications:publication list -> unit -> result
(** Simulate the schedule under the given environment — the sole entry
    point (see {!Env} for the Env-only contract). Every {!Env.t} field
    except [pool] is consumed; the [prepare] hook runs before the first
    injection. With an enabled [env.obs], publishes the
    [multi.completion] per-payload completion histogram and the
    [multi.payloads] counter on top of the network-layer metrics.
    @raise Invalid_argument on duplicate payload ids, crashed or
    out-of-range origins, or negative injection times. *)
