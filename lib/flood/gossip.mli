(** Push gossip — the probabilistic baseline.

    On first receipt (and at the start, for the source) a node forwards
    the payload to [fanout] uniformly chosen neighbours; a TTL bounds the
    spread. Gossip sends O(n·fanout) messages and delivers with high
    probability only — the qualitative contrast with deterministic
    flooding on a k-connected graph, which guarantees delivery under any
    k−1 failures. *)

type result = {
  delivered : bool array;
  messages_sent : int;
  completion_time : float;
  coverage_of_alive : float;  (** delivered / alive, in (0,1] *)
}

val run_env :
  env:Env.t ->
  graph:Graph_core.Graph.t ->
  source:int ->
  fanout:int ->
  ttl:int ->
  unit ->
  result
(** One gossip execution under the given environment — the sole entry
    point (see {!Env} for the Env-only contract). Every {!Env.t} field
    except [pool] is consumed; the [prepare] hook runs before the first
    push. With an enabled [env.obs], publishes the [gossip.completion]
    per-node delivery histogram, the [gossip.delivered_nodes] counter
    and the [gossip.coverage]/[gossip.completion_time] gauges on top of
    the network-layer [net.*] metrics. *)

val default_ttl : n:int -> int
(** ⌈log₂ n⌉ + 4 — enough rounds for gossip to plausibly saturate. *)
