module Graph = Graph_core.Graph
module Sim = Netsim.Sim
module Network = Netsim.Network

type publication = { origin : int; inject_time : float; payload_id : int }

type message_stats = {
  payload_id : int;
  origin : int;
  delivered_count : int;
  completion : float;
  covers_all_alive : bool;
}

type result = { per_message : message_stats list; total_messages : int; all_covered : bool }

type payload = { id : int; hop : int }

let run_env ~env ~graph ~publications () =
  let crashed = env.Env.crashed in
  let obs = env.Env.obs in
  let n = Graph.n graph in
  let ids = List.map (fun (p : publication) -> p.payload_id) publications in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Multi.run: duplicate payload ids";
  List.iter
    (fun (p : publication) ->
      if p.origin < 0 || p.origin >= n then invalid_arg "Multi.run: origin out of range";
      if List.mem p.origin crashed then invalid_arg "Multi.run: origin is crashed";
      if p.inject_time < 0.0 then invalid_arg "Multi.run: negative injection time")
    publications;
  let sim = Env.sim_of env in
  let net = Env.network_of_graph env ~sim ~graph in
  List.iter (fun v -> Network.crash net v) crashed;
  List.iter (fun (u, v) -> Network.fail_link net u v) env.Env.failed_links;
  (match env.Env.prepare with Some { Env.prepare } -> prepare net | None -> ());
  (* per payload: delivery flags and latest first-delivery time *)
  let seen : (int, bool array) Hashtbl.t = Hashtbl.create 16 in
  let last_delivery : (int, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p : publication) ->
      Hashtbl.replace seen p.payload_id (Array.make n false);
      Hashtbl.replace last_delivery p.payload_id 0.0)
    publications;
  let record id v =
    let flags = Hashtbl.find seen id in
    if flags.(v) then false
    else begin
      flags.(v) <- true;
      true
    end
  in
  let csr = Network.csr net in
  let forward v ~except ~id ~hop =
    Graph_core.Csr.iter_neighbors csr v (fun w ->
        if w <> except then Network.send net ~src:v ~dst:w { id; hop })
  in
  Network.set_receiver net (fun ~dst ~src msg ->
      if record msg.id dst then begin
        Hashtbl.replace last_delivery msg.id (Sim.now sim);
        forward dst ~except:src ~id:msg.id ~hop:(msg.hop + 1)
      end);
  List.iter
    (fun (p : publication) ->
      Sim.schedule_at sim ~time:p.inject_time (fun () ->
          if record p.payload_id p.origin then
            forward p.origin ~except:(-1) ~id:p.payload_id ~hop:1))
    publications;
  Sim.run sim;
  let alive = Network.alive_mask net in
  let per_message =
    publications
    |> List.sort (fun (a : publication) (b : publication) -> compare a.payload_id b.payload_id)
    |> List.map (fun (p : publication) ->
           let flags = Hashtbl.find seen p.payload_id in
           let delivered_count =
             Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 flags
           in
           let covers =
             let ok = ref true in
             Array.iteri (fun v live -> if live && not flags.(v) then ok := false) alive;
             !ok
           in
           {
             payload_id = p.payload_id;
             origin = p.origin;
             delivered_count;
             completion = max 0.0 (Hashtbl.find last_delivery p.payload_id -. p.inject_time);
             covers_all_alive = covers;
           })
  in
  (if Obs.Registry.enabled obs then begin
     let h = Obs.Registry.histogram obs "multi.completion" ~bounds:Obs.Registry.time_bounds in
     List.iter (fun m -> Obs.Registry.observe h m.completion) per_message;
     Obs.Registry.add (Obs.Registry.counter obs "multi.payloads") (List.length per_message)
   end);
  {
    per_message;
    total_messages = (Network.stats net).Network.sent;
    all_covered = List.for_all (fun m -> m.covers_all_alive) per_message;
  }
