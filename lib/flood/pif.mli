(** Propagation of Information with Feedback (Segall's PIF).

    Plain flooding delivers, but the source never learns it. PIF adds
    the feedback wave: every [Propagate] a node sends is eventually
    answered by exactly one [Echo] from that neighbour — immediately if
    the neighbour was already informed, or after the neighbour's whole
    subtree has echoed if the propagate made it a child. When the
    source's last pending echo arrives, every node is provably informed
    — deterministic termination detection in ≈ 2·eccentricity time and
    exactly 2 messages per graph edge.

    The feedback wave assumes live nodes (it is the classic
    reliable-network protocol): crashed nodes swallow echoes, so with
    failures the source simply never completes within the horizon —
    tested behaviour, not a bug. Pair with a failure detector to rebuild
    on a pruned topology if needed. *)

type result = {
  informed : bool array;
  completed : bool;  (** the source's feedback wave closed *)
  completion_detected_at : float;  (** -1 when not completed *)
  last_delivery_at : float;  (** when the last node was actually informed *)
  messages : int;  (** propagates + echoes *)
}

val run_env : env:Env.t -> graph:Graph_core.Graph.t -> source:int -> unit -> result
(** One PIF execution under the given environment — the sole entry
    point (see {!Env} for the Env-only contract). Rejects a non-zero
    [env.loss_rate] — the echo accounting is only meaningful on
    reliable channels; crash-style chaos (through [env.crashed] or a
    [prepare]-installed plan) is fair game and shows up as a
    never-closing feedback wave. With an enabled [env.obs], publishes
    the [pif.echoes] counter and [pif.completed] /
    [pif.completion_detected_at] / [pif.last_delivery_at] gauges.
    @raise Invalid_argument on a crashed or out-of-range source, or a
    positive loss rate. *)
