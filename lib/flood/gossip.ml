module Graph = Graph_core.Graph
module Prng = Graph_core.Prng
module Sim = Netsim.Sim
module Network = Netsim.Network

type result = {
  delivered : bool array;
  messages_sent : int;
  completion_time : float;
  coverage_of_alive : float;
}

type payload = { ttl : int }

let default_ttl ~n =
  if n <= 1 then 1 else int_of_float (ceil (log (float_of_int n) /. log 2.0)) + 4

let run_env ~env ~graph ~source ~fanout ~ttl () =
  if fanout < 1 then invalid_arg "Gossip.run: fanout < 1";
  if ttl < 1 then invalid_arg "Gossip.run: ttl < 1";
  let crashed = env.Env.crashed in
  let obs = env.Env.obs in
  let n = Graph.n graph in
  if source < 0 || source >= n then invalid_arg "Gossip.run: source out of range";
  if List.mem source crashed then invalid_arg "Gossip.run: source is crashed";
  let sim = Env.sim_of env in
  let net = Env.network_of_graph env ~sim ~graph in
  List.iter (fun v -> Network.crash net v) crashed;
  List.iter (fun (u, v) -> Network.fail_link net u v) env.Env.failed_links;
  (match env.Env.prepare with Some { Env.prepare } -> prepare net | None -> ());
  let rng = Sim.fork_rng sim in
  let delivered = Array.make n false in
  let delivery_time = Array.make n (-1.0) in
  let csr = Network.csr net in
  let off = Graph_core.Csr.offsets csr and nbr = Graph_core.Csr.neighbor_array csr in
  let push v ~ttl =
    let deg = off.(v + 1) - off.(v) in
    if deg > 0 then begin
      let picks = min fanout deg in
      let chosen = Prng.sample_without_replacement rng ~k:picks ~n:deg in
      List.iter (fun i -> Network.send net ~src:v ~dst:nbr.(off.(v) + i) { ttl }) chosen
    end
  in
  Network.set_receiver net (fun ~dst ~src:_ msg ->
      if not delivered.(dst) then begin
        delivered.(dst) <- true;
        delivery_time.(dst) <- Sim.now sim;
        if msg.ttl > 1 then push dst ~ttl:(msg.ttl - 1)
      end);
  delivered.(source) <- true;
  delivery_time.(source) <- 0.0;
  push source ~ttl;
  Sim.run sim;
  let alive = Network.alive_mask net in
  let alive_count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 alive in
  let reached = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 delivered in
  let stats = Network.stats net in
  let completion_time = Array.fold_left max 0.0 delivery_time in
  let coverage = float_of_int reached /. float_of_int (max 1 alive_count) in
  (if Obs.Registry.enabled obs then begin
     let h = Obs.Registry.histogram obs "gossip.completion" ~bounds:Obs.Registry.time_bounds in
     Array.iter (fun t -> if t >= 0.0 then Obs.Registry.observe h t) delivery_time;
     Obs.Registry.add (Obs.Registry.counter obs "gossip.delivered_nodes") reached;
     Obs.Registry.set (Obs.Registry.gauge obs "gossip.coverage") coverage;
     Obs.Registry.set (Obs.Registry.gauge obs "gossip.completion_time") completion_time
   end);
  { delivered; messages_sent = stats.Network.sent; completion_time; coverage_of_alive = coverage }
