type prepare = { prepare : 'msg. 'msg Netsim.Network.t -> unit }

type t = {
  latency : Netsim.Network.latency option;
  loss_rate : float;
  processing_delay : float;
  link_capacity : float option;
  queue_cap : int option;
  queue_policy : Netsim.Network.queue_policy option;
  bands : int;
  crashed : int list;
  failed_links : (int * int) list;
  seed : int option;
  obs : Obs.Registry.t;
  pool : Par.Pool.t option;
  prepare : prepare option;
  engine : Netsim.Sim.engine option;
  trace : Netsim.Trace.t option;
}

let default =
  {
    latency = None;
    loss_rate = 0.0;
    processing_delay = 0.0;
    link_capacity = None;
    queue_cap = None;
    queue_policy = None;
    bands = 1;
    crashed = [];
    failed_links = [];
    seed = None;
    obs = Obs.Registry.nil;
    pool = None;
    prepare = None;
    engine = None;
    trace = None;
  }

let make ?latency ?(loss_rate = 0.0) ?(processing_delay = 0.0) ?link_capacity ?queue_cap
    ?queue_policy ?(bands = 1) ?(crashed = []) ?(failed_links = []) ?seed
    ?(obs = Obs.Registry.nil) ?pool ?prepare ?engine ?trace () =
  {
    latency;
    loss_rate;
    processing_delay;
    link_capacity;
    queue_cap;
    queue_policy;
    bands;
    crashed;
    failed_links;
    seed;
    obs;
    pool;
    prepare;
    engine;
    trace;
  }

let with_latency l t = { t with latency = Some l }

let with_loss_rate loss_rate t = { t with loss_rate }

let with_processing_delay processing_delay t = { t with processing_delay }

let with_link_capacity c t = { t with link_capacity = Some c }

let with_queue_cap c t = { t with queue_cap = Some c }

let with_queue_policy p t = { t with queue_policy = Some p }

let with_bands bands t = { t with bands }

let without_link_capacity t = { t with link_capacity = None; queue_cap = None; queue_policy = None }

let with_crashed crashed t = { t with crashed }

let with_failed_links failed_links t = { t with failed_links }

let with_seed seed t = { t with seed = Some seed }

let with_obs obs t = { t with obs }

let with_pool pool t = { t with pool }

let with_prepare p t = { t with prepare = Some p }

let with_engine e t = { t with engine = Some e }

let with_trace tr t = { t with trace = Some tr }

(* must match Netsim.Sim.create's default seed *)
let default_seed = 0x51

let seed_value t = match t.seed with Some s -> s | None -> default_seed

(* The one place the environment is lowered onto a simulator + network
   pair: every protocol's [run_env] goes through here, so a new Env
   knob (capacity, queue policy, …) reaches all run surfaces at once
   instead of being re-threaded call site by call site. *)
let sim_of t = Netsim.Sim.create ?seed:t.seed ?engine:t.engine ~obs:t.obs ()

let network_of_graph t ~sim ~graph =
  Netsim.Network.create ~sim ~graph ?latency:t.latency ~loss_rate:t.loss_rate
    ~processing_delay:t.processing_delay ?link_capacity:t.link_capacity ?queue_cap:t.queue_cap
    ?queue_policy:t.queue_policy ~bands:t.bands ?trace:t.trace ~obs:t.obs ()

let network_of_csr t ~sim ~csr =
  Netsim.Network.create_csr ~sim ~csr ?latency:t.latency ~loss_rate:t.loss_rate
    ~processing_delay:t.processing_delay ?link_capacity:t.link_capacity ?queue_cap:t.queue_cap
    ?queue_policy:t.queue_policy ~bands:t.bands ?trace:t.trace ~obs:t.obs ()
