module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Sim = Netsim.Sim
module Network = Netsim.Network

type result = {
  delivered : bool array;
  delivery_time : float array;
  hops : int array;
  messages_sent : int;
  messages_delivered : int;
  completion_time : float;
  max_hops : int;
  covers_all_alive : bool;
}

(* the payload is the bare hop count: together with the pooled event
   core underneath, one flooded message costs zero allocation *)

let flood_core ~env ~sim ~(net : int Network.t) ~n ~source =
  if List.mem source env.Env.crashed then invalid_arg "Flood.run: source is crashed";
  let obs = env.Env.obs in
  List.iter (fun v -> Network.crash net v) env.Env.crashed;
  List.iter (fun (u, v) -> Network.fail_link net u v) env.Env.failed_links;
  (match env.Env.prepare with Some { Env.prepare } -> prepare net | None -> ());
  let delivered = Array.make n false in
  let delivery_time = Array.make n (-1.0) in
  let hops = Array.make n (-1) in
  (* [dst] is always in range — it came off the network's own CSR row *)
  Network.set_int_receiver net (fun ~dst ~src hop ->
      if not (Array.unsafe_get delivered dst) then begin
        Array.unsafe_set delivered dst true;
        Array.unsafe_set delivery_time dst (Sim.now sim);
        Array.unsafe_set hops dst hop;
        Network.send_neighbors_int net ~except:src ~src:dst (hop + 1)
      end);
  delivered.(source) <- true;
  delivery_time.(source) <- 0.0;
  hops.(source) <- 0;
  Network.send_neighbors_int net ~src:source ~except:(-1) 1;
  Sim.run sim;
  let completion_time = Array.fold_left max 0.0 delivery_time in
  let max_hops = Array.fold_left max 0 hops in
  let alive = Network.alive_mask net in
  let covers_all_alive =
    let ok = ref true in
    Array.iteri (fun v live -> if live && not delivered.(v) then ok := false) alive;
    !ok
  in
  let stats = Network.stats net in
  (if Obs.Registry.enabled obs then begin
     let open Obs.Registry in
     let h_hops = histogram obs "flood.hops" ~bounds:hop_bounds in
     let h_completion = histogram obs "flood.completion" ~bounds:time_bounds in
     let reached = ref 0 in
     Array.iteri
       (fun v ok ->
         if ok then begin
           reached := !reached + 1;
           observe h_hops (float_of_int hops.(v));
           observe h_completion delivery_time.(v)
         end)
       delivered;
     (* reconstruct the hop layers as round spans on the shared
        timeline: round r closes when its last member first hears *)
     let layer_count = Array.make (max_hops + 1) 0 in
     let layer_close = Array.make (max_hops + 1) 0.0 in
     Array.iteri
       (fun v h ->
         if h >= 0 then begin
           layer_count.(h) <- layer_count.(h) + 1;
           if delivery_time.(v) > layer_close.(h) then layer_close.(h) <- delivery_time.(v)
         end)
       hops;
     for h = 1 to max_hops do
       event_at obs ~at:layer_close.(h - 1) Round_start ~node:layer_count.(h) ~info:h;
       event_at obs ~at:layer_close.(h) Round_end ~node:layer_count.(h) ~info:h
     done;
     add (counter obs "flood.delivered_nodes") !reached;
     set (gauge obs "flood.rounds") (float_of_int max_hops);
     set (gauge obs "flood.completion_time") completion_time;
     let alive_count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 alive in
     set (gauge obs "flood.coverage")
       (float_of_int !reached /. float_of_int (max 1 alive_count))
   end);
  {
    delivered;
    delivery_time;
    hops;
    messages_sent = stats.Network.sent;
    messages_delivered = stats.Network.delivered;
    completion_time;
    max_hops;
    covers_all_alive;
  }

let run_env ~env ~graph ~source () =
  let n = Graph.n graph in
  if source < 0 || source >= n then invalid_arg "Flood.run: source out of range";
  let sim = Env.sim_of env in
  let net = Env.network_of_graph env ~sim ~graph in
  flood_core ~env ~sim ~net ~n ~source

let run_csr_env ~env ~csr ~source () =
  let n = Csr.n csr in
  if source < 0 || source >= n then invalid_arg "Flood.run: source out of range";
  let sim = Env.sim_of env in
  let net = Env.network_of_csr env ~sim ~csr in
  flood_core ~env ~sim ~net ~n ~source
