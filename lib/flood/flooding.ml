module Graph = Graph_core.Graph
module Sim = Netsim.Sim
module Network = Netsim.Network

type result = {
  delivered : bool array;
  delivery_time : float array;
  hops : int array;
  messages_sent : int;
  messages_delivered : int;
  completion_time : float;
  max_hops : int;
  covers_all_alive : bool;
}

type payload = { hop : int }

let run ?latency ?loss_rate ?processing_delay ?(crashed = []) ?(failed_links = []) ?seed ~graph ~source () =
  let n = Graph.n graph in
  if source < 0 || source >= n then invalid_arg "Flood.run: source out of range";
  if List.mem source crashed then invalid_arg "Flood.run: source is crashed";
  let sim = Sim.create ?seed () in
  let net = Network.create ~sim ~graph ?latency ?loss_rate ?processing_delay () in
  List.iter (fun v -> Network.crash net v) crashed;
  List.iter (fun (u, v) -> Network.fail_link net u v) failed_links;
  let delivered = Array.make n false in
  let delivery_time = Array.make n (-1.0) in
  let hops = Array.make n (-1) in
  let csr = Network.csr net in
  let forward v ~except ~hop =
    Graph_core.Csr.iter_neighbors csr v (fun w ->
        if w <> except then Network.send net ~src:v ~dst:w { hop })
  in
  Network.set_receiver net (fun ~dst ~src msg ->
      if not delivered.(dst) then begin
        delivered.(dst) <- true;
        delivery_time.(dst) <- Sim.now sim;
        hops.(dst) <- msg.hop;
        forward dst ~except:src ~hop:(msg.hop + 1)
      end);
  delivered.(source) <- true;
  delivery_time.(source) <- 0.0;
  hops.(source) <- 0;
  forward source ~except:(-1) ~hop:1;
  Sim.run sim;
  let completion_time = Array.fold_left max 0.0 delivery_time in
  let max_hops = Array.fold_left max 0 hops in
  let alive = Network.alive_mask net in
  let covers_all_alive =
    let ok = ref true in
    Array.iteri (fun v live -> if live && not delivered.(v) then ok := false) alive;
    !ok
  in
  let stats = Network.stats net in
  {
    delivered;
    delivery_time;
    hops;
    messages_sent = stats.Network.sent;
    messages_delivered = stats.Network.delivered;
    completion_time;
    max_hops;
    covers_all_alive;
  }
