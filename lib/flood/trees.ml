module Csr = Graph_core.Csr
module Tree_pack = Graph_core.Tree_pack
module Sim = Netsim.Sim
module Network = Netsim.Network

type result = {
  delivered : bool array;
  messages_sent : int;
  fallbacks : int;
  tree_count : int;
  completion_time : float;
  coverage_of_alive : float;
}

(* Payload word: chunk id in the high bits, the flood-escalation flag in
   bit 0 — so a tree-routed copy and a fallback-flood copy of the same
   chunk stay distinguishable on the int plane. *)
let encode ~chunk ~flood = (chunk lsl 1) lor Bool.to_int flood

let chunk_of payload = payload lsr 1

let is_flood payload = payload land 1 = 1

(* Forward one chunk from [node] down its tree, or escalate. The
   all-children check runs before any send: a dead child link
   (failed, crashed endpoint, or full Drop_tail FIFO) means the
   subtree below it is unreachable by tree routing, so the node
   switches this chunk to flood mode — every neighbour except the one
   it came from — and delivery degrades to the O(2m) flood bound
   instead of silently losing the subtree. Returns 1 on escalation,
   0 on a clean tree hop. *)
let forward ~net ~pack ~tree ~node ~parent ~chunk =
  let usable = ref true in
  Tree_pack.iter_children pack ~tree ~node (fun ~child ~eidx ->
      if !usable && not (Network.link_usable net ~src:node ~dst:child ~eidx) then usable := false);
  if !usable then begin
    let p = encode ~chunk ~flood:false in
    Tree_pack.iter_children pack ~tree ~node (fun ~child ~eidx ->
        Network.send_int net ~src:node ~dst:child ~eidx p);
    0
  end
  else begin
    Network.send_neighbors_int net ~src:node ~except:parent (encode ~chunk ~flood:true);
    1
  end

let run_env ~env ~csr ~source ?count ?(tree = 0) ?pack () =
  let n = Csr.n csr in
  if source < 0 || source >= n then invalid_arg "Trees.run: source out of range";
  if List.mem source env.Env.crashed then invalid_arg "Trees.run: source is crashed";
  let pack =
    match pack with Some p -> p | None -> Tree_pack.pack ?count csr ~source
  in
  if Tree_pack.source pack <> source then invalid_arg "Trees.run: pack is for another source";
  if tree < 0 || tree >= Tree_pack.count pack then invalid_arg "Trees.run: tree out of range";
  let obs = env.Env.obs in
  let sim = Env.sim_of env in
  let net = Env.network_of_csr env ~sim ~csr in
  List.iter (fun v -> Network.crash net v) env.Env.crashed;
  List.iter (fun (u, v) -> Network.fail_link net u v) env.Env.failed_links;
  (match env.Env.prepare with Some { Env.prepare } -> prepare net | None -> ());
  let delivered = Array.make n false in
  let delivery_time = Array.make n (-1.0) in
  (* Second dedup plane: has this node already forwarded a flood copy?
     Kept separate from [delivered] so a node that the tree already
     covered still relays the fallback flood exactly once — otherwise a
     ring of tree-delivered nodes would absorb the flood and starve the
     nodes behind the dead edge it is trying to reach. *)
  let flooded = Array.make n false in
  let fallbacks = ref 0 in
  let tree_hop node parent chunk =
    if forward ~net ~pack ~tree ~node ~parent ~chunk = 1 then begin
      (* [forward] already sent the flood burst; account for it *)
      incr fallbacks;
      flooded.(node) <- true
    end
  in
  Network.set_int_receiver net (fun ~dst ~src payload ->
      let chunk = chunk_of payload in
      if is_flood payload then begin
        if not delivered.(dst) then begin
          delivered.(dst) <- true;
          delivery_time.(dst) <- Sim.now sim
        end;
        if not flooded.(dst) then begin
          flooded.(dst) <- true;
          Network.send_neighbors_int net ~src:dst ~except:src (encode ~chunk ~flood:true)
        end
      end
      else if not delivered.(dst) then begin
        delivered.(dst) <- true;
        delivery_time.(dst) <- Sim.now sim;
        tree_hop dst src chunk
      end);
  delivered.(source) <- true;
  delivery_time.(source) <- 0.0;
  tree_hop source (-1) 0;
  Sim.run sim;
  let alive = Network.alive_mask net in
  let alive_count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 alive in
  let reached = ref 0 in
  for v = 0 to n - 1 do
    if alive.(v) && delivered.(v) then incr reached
  done;
  let stats = Network.stats net in
  let completion_time = Array.fold_left Float.max 0.0 delivery_time in
  let coverage = float_of_int !reached /. float_of_int (max 1 alive_count) in
  (if Obs.Registry.enabled obs then begin
     let h = Obs.Registry.histogram obs "trees.completion" ~bounds:Obs.Registry.time_bounds in
     Array.iter (fun t -> if t >= 0.0 then Obs.Registry.observe h t) delivery_time;
     Obs.Registry.add (Obs.Registry.counter obs "trees.delivered_nodes") !reached;
     Obs.Registry.add (Obs.Registry.counter obs "trees.fallbacks") !fallbacks;
     Obs.Registry.set (Obs.Registry.gauge obs "trees.coverage") coverage;
     Obs.Registry.set (Obs.Registry.gauge obs "trees.completion_time") completion_time
   end);
  {
    delivered;
    messages_sent = stats.Network.sent;
    fallbacks = !fallbacks;
    tree_count = Tree_pack.count pack;
    completion_time;
    coverage_of_alive = coverage;
  }
