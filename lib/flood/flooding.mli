(** Deterministic flooding over the event-driven network.

    The protocol of the paper: on first receipt of the payload a node
    records it and forwards it once to every neighbour except the one it
    arrived from; duplicates are ignored. On a k-connected topology this
    delivers to every live node despite any k−1 node or link failures —
    with logarithmic latency when the topology is an LHG. *)

type result = {
  delivered : bool array;
  delivery_time : float array;  (** virtual time of first receipt; -1 if never *)
  hops : int array;  (** hop count of the first-arriving copy; -1 if never *)
  messages_sent : int;
  messages_delivered : int;
  completion_time : float;  (** latest first-delivery time *)
  max_hops : int;  (** hop radius actually realised *)
  covers_all_alive : bool;
}

val run_env : env:Env.t -> graph:Graph_core.Graph.t -> source:int -> unit -> result
(** One flooding execution under the given environment — the sole entry
    point ({!Env} documents the Env-only contract; the legacy
    optional-argument wrapper is gone). Consumes every {!Env.t} field
    except [pool] (a single run is sequential): static failures
    ([crashed], [failed_links]) are injected before the first send,
    then the [prepare] hook runs (a fault plan schedules its timeline
    here), then the source floods. The source must not be in
    [env.crashed]; a plan may still crash it mid-run.

    With an enabled [env.obs], the run publishes — on top of the
    network-layer [net.*] metrics — the [flood.hops] and
    [flood.completion] histograms (per-node first-arrival hop count and
    virtual time, so the exporter's p50/p95/p99 are completion
    percentiles across nodes), gauges [flood.rounds],
    [flood.completion_time] and [flood.coverage], counter
    [flood.delivered_nodes], and [Round_start]/[Round_end] span pairs
    for each hop layer.
    @raise Invalid_argument on a crashed or out-of-range source. *)

val run_csr_env : env:Env.t -> csr:Graph_core.Csr.t -> source:int -> unit -> result
(** {!run_env} straight over a frozen CSR snapshot — no mutable
    adjacency-set graph is ever materialised, which is what lets a
    million-node topology from {!Lhg_core.Build.build_csr} flood within
    seconds. Identical protocol, environment handling and result; with
    matching seeds the wire trace is byte-identical to {!run_env} on
    the same topology.
    @raise Invalid_argument on a crashed or out-of-range source. *)
