module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Bfs = Graph_core.Bfs

type t = { reached : int; rounds : int; messages : int; covers_all_alive : bool }

let flood_csr ?workspace ?alive csr ~source =
  let ws = match workspace with Some w -> w | None -> Bfs.Workspace.create () in
  let dist = Bfs.csr_distances_into ws ?alive csr ~src:source in
  let live = match alive with None -> fun _ -> true | Some a -> fun v -> a.(v) in
  let nv = Csr.n csr in
  let reached = ref 0 and rounds = ref 0 and degree_sum = ref 0 and alive_total = ref 0 in
  for v = 0 to nv - 1 do
    if live v then incr alive_total;
    let d = dist.(v) in
    if d >= 0 then begin
      incr reached;
      if d > !rounds then rounds := d;
      degree_sum := !degree_sum + Csr.degree csr v
    end
  done;
  (* Every reached vertex sends to all neighbours except its first
     parent; the source has no parent. *)
  let messages = !degree_sum - (!reached - 1) in
  { reached = !reached; rounds = !rounds; messages; covers_all_alive = !reached = !alive_total }

let flood ?alive g ~source = flood_csr ?alive (Csr.of_graph g) ~source

let message_bound g = (2 * Graph.m g) - (Graph.n g - 1)
