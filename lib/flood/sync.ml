module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Bfs = Graph_core.Bfs

type t = { reached : int; rounds : int; messages : int; covers_all_alive : bool }

let flood_csr ?workspace ?alive ?(obs = Obs.Registry.nil) csr ~source =
  let ws = match workspace with Some w -> w | None -> Bfs.Workspace.create () in
  let dist = Bfs.csr_distances_into ws ?alive csr ~src:source in
  let live = match alive with None -> fun _ -> true | Some a -> fun v -> a.(v) in
  let nv = Csr.n csr in
  let reached = ref 0 and rounds = ref 0 and degree_sum = ref 0 and alive_total = ref 0 in
  for v = 0 to nv - 1 do
    if live v then incr alive_total;
    let d = dist.(v) in
    if d >= 0 then begin
      incr reached;
      if d > !rounds then rounds := d;
      degree_sum := !degree_sum + Csr.degree csr v
    end
  done;
  (* Every reached vertex sends to all neighbours except its first
     parent; the source has no parent. *)
  let messages = !degree_sum - (!reached - 1) in
  (if Obs.Registry.enabled obs then begin
     let h_rounds = Obs.Registry.histogram obs "sync.rounds" ~bounds:Obs.Registry.hop_bounds in
     Obs.Registry.observe h_rounds (float_of_int !rounds);
     Obs.Registry.add (Obs.Registry.counter obs "sync.reached") !reached;
     Obs.Registry.add (Obs.Registry.counter obs "sync.messages") messages;
     (* synchronous rounds on the virtual timeline: round r spans (r-1, r] *)
     let width = Array.make (!rounds + 1) 0 in
     for v = 0 to nv - 1 do
       if dist.(v) >= 0 then width.(dist.(v)) <- width.(dist.(v)) + 1
     done;
     for r = 1 to !rounds do
       Obs.Registry.event_at obs ~at:(float_of_int (r - 1)) Obs.Registry.Round_start
         ~node:width.(r) ~info:r;
       Obs.Registry.event_at obs ~at:(float_of_int r) Obs.Registry.Round_end ~node:width.(r)
         ~info:r
     done
   end);
  { reached = !reached; rounds = !rounds; messages; covers_all_alive = !reached = !alive_total }

let flood_env ~env g ~source =
  let alive =
    match env.Env.crashed with
    | [] -> None
    | crashed ->
        let a = Array.make (Graph.n g) true in
        List.iter (fun v -> a.(v) <- false) crashed;
        Some a
  in
  flood_csr ?alive ~obs:env.Env.obs (Csr.of_graph g) ~source

let message_bound g = (2 * Graph.m g) - (Graph.n g - 1)
