(** Spanning-tree broadcast with flood fallback, on the int payload
    plane.

    Where flooding pushes every chunk over every edge (O(2m) messages),
    tree dissemination forwards a chunk only down one packed spanning
    tree ({!Graph_core.Tree_pack}) — exactly n−1 messages on a clean
    run. The LHG's k-connectivity guarantees ⌊k/2⌋ edge-disjoint such
    trees, so a chunk stream striped across them loads each link at
    ~1/⌊k/2⌋ of the flood pressure (the Kim–Srikant argument) while the
    k−1 fault boundary stays intact:

    {b Fallback.} Before a node forwards down the tree it checks every
    child link ({!Netsim.Network.link_usable}); if any is dead —
    failed link, crashed child, full drop-tail FIFO — it escalates that
    chunk to a flood burst (all neighbours except the upstream one).
    Escalated copies carry a flag bit, and every node relays a flagged
    copy at most once {e even if the tree already delivered to it} —
    without that, tree-covered nodes would absorb the fallback flood
    and starve the subtree behind the dead edge. Delivery under any
    fault pattern that keeps the alive graph connected thus degrades to
    the flood bound instead of losing the subtree. *)

type result = {
  delivered : bool array;
  messages_sent : int;  (** n−1 on a clean run; flood-bounded after fallbacks *)
  fallbacks : int;  (** escalations to flood mode (0 = pure tree routing) *)
  tree_count : int;  (** trees in the packing used *)
  completion_time : float;
  coverage_of_alive : float;
}

val encode : chunk:int -> flood:bool -> int
(** Pack a chunk id and the escalation flag into one payload word:
    [(chunk lsl 1) lor flood]. *)

val chunk_of : int -> int

val is_flood : int -> bool

val forward :
  net:int Netsim.Network.t ->
  pack:Graph_core.Tree_pack.t ->
  tree:int ->
  node:int ->
  parent:int ->
  chunk:int ->
  int
(** One forwarding step: send [chunk] to every child of [node] in
    [tree], or — if any child link is unusable right now — escalate to
    a flood burst to all neighbours except [parent] ([-1] at the
    source). Returns the number of escalations (0 or 1). The building
    block {!Traffic.Driver} stripes with; {!run_env} wraps it for a
    single broadcast. *)

val run_env :
  env:Env.t ->
  csr:Graph_core.Csr.t ->
  source:int ->
  ?count:int ->
  ?tree:int ->
  ?pack:Graph_core.Tree_pack.t ->
  unit ->
  result
(** Broadcast one chunk from [source] down tree [?tree] (default 0) of
    a [?count]-tree packing (default {!Graph_core.Tree_pack.default_count}),
    under the environment's faults, capacity and engine. [?pack] reuses
    a precomputed packing (must be rooted at [source]).
    @raise Invalid_argument if [source] is out of range or crashed, the
    pack is for another source, or [tree] is out of range. *)
