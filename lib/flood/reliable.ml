module Graph = Graph_core.Graph
module Prng = Graph_core.Prng
module Sim = Netsim.Sim
module Network = Netsim.Network

type result = {
  delivered_fraction : float;
  complete : bool;
  completion_time : float option;
  flood_messages : int;
  repair_messages : int;
  repair_messages_at_completion : int option;
}

type message =
  | Flood of { id : int; hop : int }
  | Digest of int list  (** payload ids the sender holds *)
  | Data of int

let run_env ~env ~graph ~publications ~anti_entropy_period ~duration () =
  if anti_entropy_period <= 0.0 then invalid_arg "Reliable.run: non-positive period";
  if duration <= 0.0 then invalid_arg "Reliable.run: non-positive duration";
  let crashed = env.Env.crashed in
  let obs = env.Env.obs in
  let n = Graph.n graph in
  let ids = List.map (fun (p : Multi.publication) -> p.Multi.payload_id) publications in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Reliable.run: duplicate payload ids";
  List.iter
    (fun (p : Multi.publication) ->
      if p.Multi.origin < 0 || p.Multi.origin >= n then
        invalid_arg "Reliable.run: origin out of range";
      if List.mem p.Multi.origin crashed then invalid_arg "Reliable.run: origin is crashed";
      if p.Multi.inject_time < 0.0 then invalid_arg "Reliable.run: negative injection time")
    publications;
  let sim = Env.sim_of env in
  let net = Env.network_of_graph env ~sim ~graph in
  let m_flood = Obs.Registry.counter obs "reliable.flood_messages" in
  let m_repair = Obs.Registry.counter obs "reliable.repair_messages" in
  List.iter (fun v -> Network.crash net v) crashed;
  List.iter (fun (u, v) -> Network.fail_link net u v) env.Env.failed_links;
  (match env.Env.prepare with Some { Env.prepare } -> prepare net | None -> ());
  let rng = Sim.fork_rng sim in
  let payload_count = List.length publications in
  (* has.(v) maps payload id -> unit for node v *)
  let has = Array.init n (fun _ -> Hashtbl.create 8) in
  let alive = Network.alive_mask net in
  let alive_count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 alive in
  let remaining = ref (alive_count * payload_count) in
  let completion_time = ref None in
  let flood_messages = ref 0 and repair_messages = ref 0 in
  let repair_at_completion = ref None in
  let holds v id = Hashtbl.mem has.(v) id in
  let send_flood ~src ~dst id hop =
    incr flood_messages;
    Obs.Registry.incr m_flood;
    Network.send net ~src ~dst (Flood { id; hop })
  in
  let send_repair ~src ~dst msg =
    incr repair_messages;
    Obs.Registry.incr m_repair;
    (* a [Data] repair is a retransmission of the payload proper;
       digests are control traffic *)
    (match msg with
    | Data id -> Obs.Registry.event obs Obs.Registry.Retransmit ~node:src ~info:id
    | Flood _ | Digest _ -> ());
    Network.send net ~src ~dst msg
  in
  let record v id =
    if holds v id then false
    else begin
      Hashtbl.replace has.(v) id ();
      if alive.(v) then begin
        decr remaining;
        if !remaining = 0 && !completion_time = None then begin
          completion_time := Some (Sim.now sim);
          repair_at_completion := Some !repair_messages
        end
      end;
      true
    end
  in
  let csr = Network.csr net in
  let forward v ~except ~id ~hop =
    Graph_core.Csr.iter_neighbors csr v (fun w ->
        if w <> except then send_flood ~src:v ~dst:w id hop)
  in
  Network.set_receiver net (fun ~dst ~src msg ->
      match msg with
      | Flood { id; hop } -> if record dst id then forward dst ~except:src ~id ~hop:(hop + 1)
      | Digest sender_ids ->
          (* push back everything the sender is missing *)
          Hashtbl.iter
            (fun id () -> if not (List.mem id sender_ids) then send_repair ~src:dst ~dst:src (Data id))
            has.(dst)
      | Data id -> if record dst id then forward dst ~except:src ~id ~hop:1);
  (* flooding phase: inject publications *)
  List.iter
    (fun (p : Multi.publication) ->
      Sim.schedule_at sim ~time:p.Multi.inject_time (fun () ->
          if record p.Multi.origin p.Multi.payload_id then
            forward p.Multi.origin ~except:(-1) ~id:p.Multi.payload_id ~hop:1))
    publications;
  (* anti-entropy timers, phase-shifted per node *)
  let digest_of v = Hashtbl.fold (fun id () acc -> id :: acc) has.(v) [] in
  (* the timer survives crash windows (sends are skipped while the
     node is down) so a node a chaos plan recovers resumes advertising
     its digest and gets repaired *)
  let rec tick v () =
    if Sim.now sim < duration then begin
      (if not (Network.is_crashed net v) then
         let deg = Graph_core.Csr.degree csr v in
         if deg > 0 then begin
           let off = Graph_core.Csr.offsets csr and nbr = Graph_core.Csr.neighbor_array csr in
           let peer = nbr.(off.(v) + Prng.int rng deg) in
           send_repair ~src:v ~dst:peer (Digest (digest_of v))
         end);
      Sim.schedule sim ~delay:anti_entropy_period (tick v)
    end
  in
  for v = 0 to n - 1 do
    let phase = Prng.float rng anti_entropy_period in
    Sim.schedule sim ~delay:phase (tick v)
  done;
  Sim.run ~until:duration sim;
  let delivered =
    let total = ref 0 in
    for v = 0 to n - 1 do
      if alive.(v) then total := !total + Hashtbl.length has.(v)
    done;
    !total
  in
  let delivered_fraction =
    if alive_count * payload_count = 0 then 1.0
    else float_of_int delivered /. float_of_int (alive_count * payload_count)
  in
  (if Obs.Registry.enabled obs then begin
     Obs.Registry.set (Obs.Registry.gauge obs "reliable.delivered_fraction") delivered_fraction;
     Obs.Registry.set
       (Obs.Registry.gauge obs "reliable.completion_time")
       (match !completion_time with Some t -> t | None -> -1.0)
   end);
  {
    delivered_fraction;
    complete = !remaining = 0;
    completion_time = !completion_time;
    flood_messages = !flood_messages;
    repair_messages = !repair_messages;
    repair_messages_at_completion = !repair_at_completion;
  }
