(** The unified run environment for every flood-family protocol.

    PR by PR the protocol entry points accreted the same optional
    arguments — [?latency], [?loss_rate], [?crashed], [?seed], [?obs],
    [?pool], … — each module spelling a subset of them. [Env.t] bundles
    the whole run environment into one value with a {!default} and
    [with_*] builders, so experiment drivers configure once and thread
    one value through {!Flooding.run_env}, {!Sync.flood_env},
    {!Multi.run_env}, {!Reliable.run_env}, {!Gossip.run_env},
    {!Pif.run_env} and {!Runner.flood_trials_env} — and so the chaos
    auditor can inject a fault plan into any protocol without that
    protocol knowing what a plan is ({!prepare}).

    {b The Env-only contract.} The [run_env] entry points are the only
    way to run a protocol: the legacy optional-argument [run] wrappers
    that used to shadow them were deleted once every caller had moved
    (they re-spelled a drifting subset of these fields per module,
    which is exactly the disease this record cures). All code builds an
    [Env.t]:

    {[
      let env =
        Flood.Env.default
        |> Flood.Env.with_seed 42
        |> Flood.Env.with_loss_rate 0.05
        |> Flood.Env.with_obs registry
      in
      Flood.Flooding.run_env ~env ~graph ~source ()
    ]}

    Each protocol documents which fields it consumes; unused fields are
    ignored except where noted (e.g. {!Pif.run_env} rejects a non-zero
    [loss_rate] because its echo accounting assumes reliable
    channels). *)

type prepare = { prepare : 'msg. 'msg Netsim.Network.t -> unit }
(** A hook run against the freshly created network — after static
    [crashed]/[failed_links] injection, before the protocol's first
    send. Polymorphic in the payload so one hook serves every protocol;
    {!Chaos.Exec} uses it to schedule a fault plan's timeline on the
    run's simulator. *)

type t = {
  latency : Netsim.Network.latency option;
      (** [None] = the network default ([constant_latency 1.0]). *)
  loss_rate : float;  (** initial i.i.d. loss probability; default 0. *)
  processing_delay : float;  (** receiver service time; default 0. *)
  link_capacity : float option;
      (** per-directed-link service rate (messages per time unit);
          [None] = infinite bandwidth. See {!Netsim.Network}'s
          link-capacity section. *)
  queue_cap : int option;
      (** bound on each link FIFO's backlog; [None] = unbounded. *)
  queue_policy : Netsim.Network.queue_policy option;
      (** what a full link queue does; [None] = the network default
          ({!Netsim.Network.Drop_tail}). *)
  bands : int;
      (** strict-priority bands on the link FIFO plane (1–4, default
          1 = no priorities). See {!Netsim.Network}'s priority-bands
          section; the scenario runner rides control-plane reconfig
          messages on band 0 above the data stream. *)
  crashed : int list;  (** nodes down before t = 0. *)
  failed_links : (int * int) list;  (** links down before t = 0. *)
  seed : int option;  (** [None] = the simulator default seed. *)
  obs : Obs.Registry.t;  (** default {!Obs.Registry.nil}. *)
  pool : Par.Pool.t option;
      (** domain pool for entry points that fan out (trial sweeps,
          chaos audits); single runs ignore it. *)
  prepare : prepare option;  (** fault-plan / instrumentation hook. *)
  engine : Netsim.Sim.engine option;
      (** [None] = the simulator default ({!Netsim.Sim.Calendar}).
          {!Netsim.Sim.Heap} selects the reference scheduler — both
          produce identical executions; this exists for differential
          testing and benchmarking. *)
  trace : Netsim.Trace.t option;
      (** wire trace to record every send and terminal outcome into. *)
}

val default : t
(** No failures, no loss, unit latency, disabled observability,
    sequential. *)

val make :
  ?latency:Netsim.Network.latency ->
  ?loss_rate:float ->
  ?processing_delay:float ->
  ?link_capacity:float ->
  ?queue_cap:int ->
  ?queue_policy:Netsim.Network.queue_policy ->
  ?bands:int ->
  ?crashed:int list ->
  ?failed_links:(int * int) list ->
  ?seed:int ->
  ?obs:Obs.Registry.t ->
  ?pool:Par.Pool.t ->
  ?prepare:prepare ->
  ?engine:Netsim.Sim.engine ->
  ?trace:Netsim.Trace.t ->
  unit ->
  t
(** {!default} with the given fields replaced — the bridge the legacy
    optional-argument wrappers go through. *)

val with_latency : Netsim.Network.latency -> t -> t

val with_loss_rate : float -> t -> t

val with_processing_delay : float -> t -> t

val with_link_capacity : float -> t -> t
(** Give every directed link a finite service rate — the sustained
    traffic knob. Combine with {!with_queue_cap}/{!with_queue_policy}
    for bounded lossy queues. *)

val with_queue_cap : int -> t -> t

val with_queue_policy : Netsim.Network.queue_policy -> t -> t

val with_bands : int -> t -> t

val without_link_capacity : t -> t
(** Back to infinite links (clears capacity, cap, and policy). *)

val with_crashed : int list -> t -> t

val with_failed_links : (int * int) list -> t -> t

val with_seed : int -> t -> t

val with_obs : Obs.Registry.t -> t -> t

val with_pool : Par.Pool.t option -> t -> t
(** Takes an option so call sites can thread a maybe-pool verbatim
    ([with_pool pool_opt]); [with_pool None] restores sequential. *)

val with_prepare : prepare -> t -> t

val with_engine : Netsim.Sim.engine -> t -> t

val with_trace : Netsim.Trace.t -> t -> t

val seed_value : t -> int
(** The seed, defaulted to the simulator's default (0x51) — for entry
    points that must derive per-trial streams from a concrete seed. *)

val sim_of : t -> Netsim.Sim.t
(** A fresh simulator configured from the environment (seed, engine,
    registry). *)

val network_of_graph : t -> sim:Netsim.Sim.t -> graph:Graph_core.Graph.t -> 'msg Netsim.Network.t

val network_of_csr : t -> sim:Netsim.Sim.t -> csr:Graph_core.Csr.t -> 'msg Netsim.Network.t
(** Lower the environment onto a network: latency, loss, processing
    delay, link capacity/queueing, trace and registry all applied in
    one place. Every protocol's [run_env] builds its network through
    these, which is what makes the Env record the {e single} workload
    surface — a knob added here reaches flooding, gossip, PIF,
    reliable broadcast and the traffic driver identically. *)
