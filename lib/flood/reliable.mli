(** Reliable broadcast: flooding plus anti-entropy repair.

    Plain flooding is reliable against ≤ k−1 crash/link failures but not
    against *message loss* — a lost copy can leave a subtree unserved
    when the redundant copies are lost too. This protocol adds the
    classic repair layer: periodically every node sends a digest of the
    payload ids it holds to one random neighbour, which pushes back
    anything the sender is missing. On a connected survivor graph every
    payload eventually reaches every live node with probability 1; the
    experiment of interest is the time/message price of that certainty
    as the loss rate grows. *)

type result = {
  delivered_fraction : float;
      (** delivered (node, payload) pairs over alive nodes × payloads at
          the simulation horizon *)
  complete : bool;  (** all alive nodes had all payloads by the horizon *)
  completion_time : float option;  (** when completeness was first reached *)
  flood_messages : int;  (** sends by the flooding phase *)
  repair_messages : int;  (** digest + data sends by anti-entropy *)
  repair_messages_at_completion : int option;
      (** repair sends issued up to the moment completeness was reached —
          the actual price of certainty (anti-entropy keeps humming
          afterwards since nodes cannot observe global completion) *)
}

val run_env :
  env:Env.t ->
  graph:Graph_core.Graph.t ->
  publications:Multi.publication list ->
  anti_entropy_period:float ->
  duration:float ->
  unit ->
  result
(** Run the stack until [duration] (virtual time) under the given
    environment — the sole entry point (see {!Env} for the Env-only
    contract). Every {!Env.t} field except [pool] is consumed.
    Anti-entropy ticks start phase-shifted per node to avoid
    synchronisation artefacts. Same argument validation as
    {!Multi.run_env}. With an enabled [env.obs], publishes the
    [reliable.flood_messages]/[reliable.repair_messages] counters,
    the [reliable.delivered_fraction]/[reliable.completion_time]
    gauges, and a [Retransmit] span event per anti-entropy [Data]
    resend.

    Completeness accounting targets the nodes alive at t = 0: this is
    the protocol whose anti-entropy actually repairs chaos-plan
    recoveries, but a node crashed by a plan mid-run keeps its
    obligations (the run then reports [complete = false] unless repair
    reaches it after recovery). *)
