module Graph = Graph_core.Graph
module Prng = Graph_core.Prng

type aggregate = {
  trials : int;
  mean_coverage : float;
  min_coverage : float;
  all_covered_fraction : float;
  mean_messages : float;
  mean_completion : float;
  mean_max_hops : float;
  p50_completion : float;
  p95_completion : float;
  p99_completion : float;
  hop_counts : int array;
}

let random_crashes rng ~n ~count ~avoid =
  if count < 0 || count > n - 1 then invalid_arg "Runner.random_crashes: bad count";
  (* Sample from n-1 slots, skipping [avoid] by shifting. *)
  Prng.sample_without_replacement rng ~k:count ~n:(n - 1)
  |> List.map (fun v -> if v >= avoid then v + 1 else v)

let random_link_failures rng g ~count =
  let es = Array.of_list (Graph.edges g) in
  if count < 0 || count > Array.length es then
    invalid_arg "Runner.random_link_failures: bad count";
  Prng.sample_without_replacement rng ~k:count ~n:(Array.length es)
  |> List.map (fun i -> es.(i))

let coverage_of ~delivered ~crashed ~n =
  let is_crashed = Array.make n false in
  List.iter (fun v -> is_crashed.(v) <- true) crashed;
  let alive = ref 0 and covered = ref 0 in
  for v = 0 to n - 1 do
    if not is_crashed.(v) then begin
      incr alive;
      if delivered.(v) then incr covered
    end
  done;
  float_of_int !covered /. float_of_int (max 1 !alive)

(* Exact percentile of a non-empty trial sample: the smallest value
   such that at least ⌈q·n⌉ samples are ≤ it. *)
let percentile_of sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    sorted.(min (n - 1) (rank - 1))
  end

(* Per-trial hop histograms accumulate in [obs] under "flood.hops"
   (linear buckets: index = hop count); flatten the prefix up to the
   last non-empty bucket into a plain array. *)
let hop_counts_of_registry obs =
  if not (Obs.Registry.enabled obs) then [||]
  else
    match Obs.Registry.find_histogram obs "flood.hops" with
    | None -> [||]
    | Some h ->
        let counts = Obs.Registry.histogram_counts h in
        let last = ref (-1) in
        (* drop the overflow bucket: hops beyond the bounds are absent
           on any graph these trials run on *)
        for i = 0 to Array.length counts - 2 do
          if counts.(i) > 0 then last := i
        done;
        Array.init (!last + 1) (fun i -> counts.(i))

let aggregate_of ~obs results =
  let trials = List.length results in
  let ft = float_of_int trials in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 results in
  let covs = List.map (fun (c, _, _, _) -> c) results in
  let completions =
    let a = Array.of_list (List.map (fun (_, _, t, _) -> t) results) in
    Array.sort compare a;
    a
  in
  {
    trials;
    mean_coverage = sum (fun (c, _, _, _) -> c) /. ft;
    min_coverage = List.fold_left min 1.0 covs;
    all_covered_fraction =
      float_of_int (List.length (List.filter (fun c -> c >= 1.0) covs)) /. ft;
    mean_messages = sum (fun (_, m, _, _) -> float_of_int m) /. ft;
    mean_completion = sum (fun (_, _, t, _) -> t) /. ft;
    mean_max_hops = sum (fun (_, _, _, h) -> float_of_int h) /. ft;
    p50_completion = percentile_of completions 0.50;
    p95_completion = percentile_of completions 0.95;
    p99_completion = percentile_of completions 0.99;
    hop_counts = hop_counts_of_registry obs;
  }

let publish_aggregate obs a =
  if Obs.Registry.enabled obs then begin
    Obs.Registry.add (Obs.Registry.counter obs "runner.trials") a.trials;
    Obs.Registry.set (Obs.Registry.gauge obs "runner.mean_coverage") a.mean_coverage;
    Obs.Registry.set (Obs.Registry.gauge obs "runner.all_covered_fraction") a.all_covered_fraction;
    Obs.Registry.set (Obs.Registry.gauge obs "runner.p50_completion") a.p50_completion;
    Obs.Registry.set (Obs.Registry.gauge obs "runner.p95_completion") a.p95_completion;
    Obs.Registry.set (Obs.Registry.gauge obs "runner.p99_completion") a.p99_completion
  end

let flood_trials_env ?(link_failures = 0) ~env ~graph ~source ~crash_count ~trials () =
  if trials < 1 then invalid_arg "Runner.flood_trials: trials < 1";
  let seed = Env.seed_value env in
  let obs = env.Env.obs in
  let rng = Prng.create ~seed in
  let n = Graph.n graph in
  let h_completion =
    Obs.Registry.histogram obs "runner.completion" ~bounds:Obs.Registry.time_bounds
  in
  let results =
    List.init trials (fun t ->
        let crashed = random_crashes rng ~n ~count:crash_count ~avoid:source in
        let failed_links =
          if link_failures = 0 then [] else random_link_failures rng graph ~count:link_failures
        in
        let trial_env =
          env
          |> Env.with_crashed crashed
          |> Env.with_failed_links failed_links
          |> Env.with_seed (seed + (1000 * t))
          |> Env.with_obs obs
        in
        let r = Flooding.run_env ~env:trial_env ~graph ~source () in
        Obs.Registry.observe h_completion r.Flooding.completion_time;
        ( coverage_of ~delivered:r.Flooding.delivered ~crashed ~n,
          r.Flooding.messages_sent,
          r.Flooding.completion_time,
          r.Flooding.max_hops ))
  in
  let a = aggregate_of ~obs results in
  publish_aggregate obs a;
  a

let gossip_trials_env ~env ~graph ~source ~fanout ~crash_count ~trials () =
  if trials < 1 then invalid_arg "Runner.gossip_trials: trials < 1";
  let seed = Env.seed_value env in
  let obs = env.Env.obs in
  let rng = Prng.create ~seed in
  let n = Graph.n graph in
  let ttl = Gossip.default_ttl ~n in
  let h_completion =
    Obs.Registry.histogram obs "runner.completion" ~bounds:Obs.Registry.time_bounds
  in
  let results =
    List.init trials (fun t ->
        let crashed = random_crashes rng ~n ~count:crash_count ~avoid:source in
        let trial_env =
          env |> Env.with_crashed crashed |> Env.with_seed (seed + (1000 * t)) |> Env.with_obs obs
        in
        let r = Gossip.run_env ~env:trial_env ~graph ~source ~fanout ~ttl () in
        Obs.Registry.observe h_completion r.Gossip.completion_time;
        ( coverage_of ~delivered:r.Gossip.delivered ~crashed ~n,
          r.Gossip.messages_sent,
          r.Gossip.completion_time,
          0 ))
  in
  let a = aggregate_of ~obs results in
  publish_aggregate obs a;
  a
