(** Monte-Carlo delivery reliability under i.i.d. node failures.

    The quantitative question behind "gossip versus deterministic
    flooding": if every node (except the source) has crashed
    independently with probability p before dissemination starts, what
    is the probability that every *surviving* node is reached? For
    flooding this is exactly the probability that the survivors induce a
    connected subgraph containing the source — guaranteed 1 when fewer
    than k nodes fail, degrading with the topology's cut structure
    beyond; for gossip it is strictly smaller even at p = 0. Estimates
    come with Wilson 95% confidence intervals. *)

type estimate = {
  probability : float;  (** point estimate: successes / trials *)
  lo : float;  (** Wilson 95% lower bound *)
  hi : float;  (** Wilson 95% upper bound *)
  trials : int;
}

val wilson_interval : successes:int -> trials:int -> float * float
(** 95% Wilson score interval. *)

val estimate_of : successes:int -> trials:int -> estimate
(** Package a raw success count as an {!estimate} with its Wilson
    interval.
    @raise Invalid_argument when [trials <= 0] or [successes] is
    outside [\[0, trials\]]. *)

val flood_delivery :
  ?obs:Obs.Registry.t ->
  ?pool:Par.Pool.t ->
  graph:Graph_core.Graph.t ->
  source:int ->
  node_failure_prob:float ->
  trials:int ->
  seed:int ->
  unit ->
  estimate
(** Probability that flooding from [source] reaches every survivor,
    estimated over [trials] independent failure draws. Uses the
    closed-form synchronous analysis per draw (exact for flooding).

    Trials run in fixed-size shards, each on its own PRNG stream
    derived from [seed] by deterministic splitting ({!Graph_core.Prng.split});
    with [?pool] the shards fan out across domains. Because the shard
    plan depends only on [(seed, trials)] and successes sum
    order-independently, the estimate is bit-identical for a given
    [(seed, trials)] at any domain count (pool or no pool).

    With [?obs], publishes [reliability.successes]/[reliability.trials]
    counters and the [reliability.probability]/[.lo]/[.hi] gauges; the
    per-draw Monte-Carlo loop itself stays uninstrumented (it is the
    allocation-free hot path). *)

val gossip_delivery :
  ?obs:Obs.Registry.t ->
  graph:Graph_core.Graph.t ->
  source:int ->
  fanout:int ->
  node_failure_prob:float ->
  trials:int ->
  seed:int ->
  unit ->
  estimate
(** Same success event for push gossip with the given fanout and TTL
    {!Gossip.default_ttl}; each trial also re-randomises the gossip
    choices. *)
