(** Experiment helpers: failure sampling and repeated trials.

    These drive the fault-tolerance figures: sample f random crashed
    nodes (never the source), flood, measure coverage of the surviving
    component, repeat over seeds, and aggregate. *)

type aggregate = {
  trials : int;
  mean_coverage : float;  (** of alive nodes *)
  min_coverage : float;
  all_covered_fraction : float;  (** trials with 100% coverage of alive nodes *)
  mean_messages : float;
  mean_completion : float;
  mean_max_hops : float;
  p50_completion : float;  (** exact percentiles over the per-trial completion times *)
  p95_completion : float;
  p99_completion : float;
  hop_counts : int array;
      (** [hop_counts.(h)] = deliveries at hop distance [h], accumulated
          across all trials from the per-run [flood.hops] histogram.
          Empty for gossip trials (no hop counter on the wire) and when
          the caller passes a disabled registry. *)
}

val random_crashes : Graph_core.Prng.t -> n:int -> count:int -> avoid:int -> int list
(** [count] distinct crash victims among [0..n-1] − \{avoid\}. *)

val random_link_failures : Graph_core.Prng.t -> Graph_core.Graph.t -> count:int -> (int * int) list
(** [count] distinct edges of the graph. *)

val flood_trials :
  ?latency:Netsim.Network.latency ->
  ?loss_rate:float ->
  ?link_failures:int ->
  ?obs:Obs.Registry.t ->
  graph:Graph_core.Graph.t ->
  source:int ->
  crash_count:int ->
  trials:int ->
  seed:int ->
  unit ->
  aggregate
(** Repeated flooding runs, fresh random failure sets per trial.
    Coverage counts delivered alive nodes over all alive nodes, so a
    partitioned survivor graph shows up as < 1 coverage.

    Every trial records into the same registry — by default a private
    enabled one, so [hop_counts] and the percentile fields are always
    populated; pass [?obs] to publish into a caller-owned registry
    instead (the per-trial flood metrics, the [runner.completion]
    histogram and the [runner.*] summary gauges all land there). *)

val gossip_trials :
  ?latency:Netsim.Network.latency ->
  ?loss_rate:float ->
  ?obs:Obs.Registry.t ->
  graph:Graph_core.Graph.t ->
  source:int ->
  fanout:int ->
  crash_count:int ->
  trials:int ->
  seed:int ->
  unit ->
  aggregate
(** Same aggregation for the gossip baseline (TTL
    {!Gossip.default_ttl}). [mean_max_hops] is reported as 0 — gossip
    payloads carry no hop counter. *)
