(** Experiment helpers: failure sampling and repeated trials.

    These drive the fault-tolerance figures: sample f random crashed
    nodes (never the source), flood, measure coverage of the surviving
    component, repeat over seeds, and aggregate. *)

type aggregate = {
  trials : int;
  mean_coverage : float;  (** of alive nodes *)
  min_coverage : float;
  all_covered_fraction : float;  (** trials with 100% coverage of alive nodes *)
  mean_messages : float;
  mean_completion : float;
  mean_max_hops : float;
  p50_completion : float;  (** exact percentiles over the per-trial completion times *)
  p95_completion : float;
  p99_completion : float;
  hop_counts : int array;
      (** [hop_counts.(h)] = deliveries at hop distance [h], accumulated
          across all trials from the per-run [flood.hops] histogram.
          Empty for gossip trials (no hop counter on the wire) and when
          the caller passes a disabled registry. *)
}

val random_crashes : Graph_core.Prng.t -> n:int -> count:int -> avoid:int -> int list
(** [count] distinct crash victims among [0..n-1] − \{avoid\}. *)

val random_link_failures : Graph_core.Prng.t -> Graph_core.Graph.t -> count:int -> (int * int) list
(** [count] distinct edges of the graph. *)

val flood_trials_env :
  ?link_failures:int ->
  env:Env.t ->
  graph:Graph_core.Graph.t ->
  source:int ->
  crash_count:int ->
  trials:int ->
  unit ->
  aggregate
(** Repeated flooding runs, fresh random failure sets per trial.
    Coverage counts delivered alive nodes over all alive nodes, so a
    partitioned survivor graph shows up as < 1 coverage.

    [env] supplies latency, loss rate, base seed and registry; its
    [crashed]/[failed_links] fields are overwritten per trial with
    freshly sampled failure sets ([crash_count] crash victims avoiding
    the source, plus [link_failures] downed edges). Every trial records
    into [env.obs] verbatim — with a disabled registry (the {!Env.default})
    [hop_counts] stays empty; pass an enabled one to collect the
    per-trial flood metrics, the [runner.completion] histogram and the
    [runner.*] summary gauges. This is the sole trial driver — the
    legacy optional-argument wrappers (and their private-registry
    default) are gone; see {!Env} for the Env-only contract. *)

val gossip_trials_env :
  env:Env.t ->
  graph:Graph_core.Graph.t ->
  source:int ->
  fanout:int ->
  crash_count:int ->
  trials:int ->
  unit ->
  aggregate
(** Same aggregation for the gossip baseline (TTL
    {!Gossip.default_ttl}). [mean_max_hops] is reported as 0 — gossip
    payloads carry no hop counter. *)
