module Graph = Graph_core.Graph
module Connectivity = Graph_core.Connectivity
module Minimality = Graph_core.Minimality
module Paths = Graph_core.Paths
module Degree = Graph_core.Degree

type report = {
  n : int;
  k : int;
  node_connected : bool;
  link_connected : bool;
  link_minimal : bool option;
  diameter : int option;
  diameter_ok : bool;
  k_regular : bool;
}

let diameter_bound ~n ~k =
  if n <= 1 then 0
  else if k <= 2 then n
  else
    let logb = log (float_of_int n) /. log (float_of_int (k - 1)) in
    int_of_float (ceil (2.0 *. logb)) + 6

let verify ?(check_minimality = true) ?pool g ~k =
  let n = Graph.n g in
  (* One frozen snapshot serves both connectivity decisions and the
     diameter sweep; only the minimality check (which removes edges one
     at a time) needs the mutable graph. All four property checks are
     parallel sweeps when a pool is supplied — each runs its own
     parallel section in turn (the pool is not reentrant). *)
  let csr = Graph_core.Csr.of_graph g in
  let node_connected = Connectivity.is_k_vertex_connected_csr ?pool csr ~k in
  let link_connected = Connectivity.is_k_edge_connected_csr ?pool csr ~k in
  let link_minimal =
    if check_minimality then Some (Minimality.is_link_minimal ?pool g ~k) else None
  in
  let diameter = Paths.diameter_csr ?pool csr in
  let diameter_ok =
    match diameter with Some d -> d <= diameter_bound ~n ~k | None -> false
  in
  let k_regular = n > 0 && Degree.is_k_regular g ~k in
  { n; k; node_connected; link_connected; link_minimal; diameter; diameter_ok; k_regular }

let is_lhg ?check_minimality ?pool g ~k =
  let r = verify ?check_minimality ?pool g ~k in
  r.node_connected && r.link_connected
  && (match r.link_minimal with Some b -> b | None -> true)
  && r.diameter_ok

let quick ?pool g ~k =
  let r = verify ~check_minimality:false ?pool g ~k in
  r.node_connected && r.link_connected && r.diameter_ok

let pp_report fmt r =
  let pp_bool_opt fmt = function
    | Some b -> Format.pp_print_bool fmt b
    | None -> Format.pp_print_string fmt "skipped"
  in
  Format.fprintf fmt
    "@[<v>n=%d k=%d@,P1 node-connectivity: %b@,P2 link-connectivity: %b@,P3 link-minimality: %a@,P4 diameter: %s (bound %d) ok=%b@,P5 k-regular: %b@]"
    r.n r.k r.node_connected r.link_connected pp_bool_opt r.link_minimal
    (match r.diameter with Some d -> string_of_int d | None -> "disconnected")
    (diameter_bound ~n:r.n ~k:r.k)
    r.diameter_ok r.k_regular

let check_realization (b : Build.t) =
  let g', layout' = Realize.realize b.Build.shape in
  layout'.Realize.copies = b.Build.layout.Realize.copies && Graph.equal g' b.Build.graph
