(** The LHG constructions.

    Each builder returns the realised graph together with its structural
    witness (tree shape + vertex layout), so callers can both use the
    graph and re-check every constraint rule on the witness. Builders
    succeed exactly when the corresponding EX function is true — tested
    property in the suite. *)

type t = {
  graph : Graph_core.Graph.t;
  shape : Shape.t;
  layout : Realize.layout;
  k : int;
}

type error =
  | K_too_small of int  (** supplied k; constructions need k ≥ 2 *)
  | N_too_small of { n : int; minimum : int }  (** n < 2k *)
  | Jd_gap of { n : int; k : int; j : int; capacity : int }
      (** the Jenkins–Demers rule cannot place j added leaves *)

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

(** {1 The unified entry point}

    All four constructions behind one closed variant, so callers that
    pick a construction at runtime (CLI, registry, experiments) dispatch
    on data instead of threading function values. *)

type construction =
  | Ktree
  | Kdiamond
  | Kdiamond_rich  (** {!kdiamond_unshared_rich}'s clique-heavy shape *)
  | Jd of { strict : bool }

val construction_name : construction -> string
(** Stable lower-case name ("ktree", "kdiamond", "kdiamond-rich", "jd",
    "jd-lenient") — used in error messages and exporter output. *)

val build : construction -> n:int -> k:int -> (t, error) result
(** Build the given construction. The named functions below are thin
    wrappers over this. *)

val build_exn : construction -> n:int -> k:int -> t
(** @raise Invalid_argument on builder errors. *)

val shape_for : construction -> n:int -> k:int -> (Shape.t, error) result
(** Just the tree shape, unrealised — the shared front half of {!build}
    and {!build_csr}. *)

val build_csr : ?big:bool -> construction -> n:int -> k:int -> (Graph_core.Csr.t, error) result
(** Build the construction straight into a CSR snapshot
    ({!Realize.realize_csr}), never materialising the adjacency-set
    graph: identical vertices, edges and neighbour order to
    [Csr.of_graph (build _).graph], at a fraction of the time and
    memory. [~big:true] puts the adjacency in off-heap [Bigarray]
    storage — the million-node configuration. *)

val build_csr_exn : ?big:bool -> construction -> n:int -> k:int -> Graph_core.Csr.t
(** @raise Invalid_argument on builder errors. *)

val jd : ?strict:bool -> n:int -> k:int -> unit -> (t, error) result
(** The Jenkins–Demers operational construction. [strict] defaults to
    [true] (special nodes carry exactly two added leaves); see
    {!Existence.ex_jd}. *)

val ktree : n:int -> k:int -> (t, error) result
(** K-TREE construction — succeeds for every n ≥ 2k (Theorem 2). *)

val kdiamond : n:int -> k:int -> (t, error) result
(** K-DIAMOND construction — succeeds for every n ≥ 2k (Theorem 5) and
    yields a k-regular graph whenever (n−2k) mod (k−1) = 0 (Theorem 6).
    Canonical parameterisation: at most one unshared-leaf group. *)

val kdiamond_unshared_rich : n:int -> k:int -> (t, error) result
(** Same (n,k) coverage and the same regularity characteristic, but
    trades tree conversions for unshared-leaf groups wherever possible —
    the shape the constraint paper's own figures use (e.g. its (13,3)
    graph with every mandatory leaf a 3-clique is reproduced exactly).
    Useful for exercising clique-heavy realisations. *)

val jd_exn : ?strict:bool -> n:int -> k:int -> unit -> t
val ktree_exn : n:int -> k:int -> t
val kdiamond_exn : n:int -> k:int -> t

val kdiamond_unshared_rich_exn : n:int -> k:int -> t
(** @raise Invalid_argument on builder errors. *)

val of_shape : Shape.t -> t
(** Realise an externally assembled shape (no constraint checks). *)
