(** Realise a tree shape as the pasted-copies graph.

    Every non-leaf shape node becomes k vertices (one per tree copy
    T₁..T_k); every shared/added leaf becomes one vertex shared by all
    copies; every unshared leaf becomes k vertices forming a clique,
    member i attached to copy i (K-DIAMOND rule 4). *)

type layout = {
  copies : int;  (** = k *)
  base_vertex : int array;  (** shape node → first graph vertex id *)
  width : int array;  (** shape node → 1 (shared) or k (replicated/clique) *)
}

val vertex_of : layout -> node:int -> copy:int -> int
(** The graph vertex representing [node] as seen from tree copy [copy]:
    the shared vertex when width is 1, otherwise the copy-th replica or
    clique member. *)

val realize : Shape.t -> Graph_core.Graph.t * layout
(** Build the graph. The vertex count equals {!Shape.vertex_count}. *)

val realize_csr : ?big:bool -> Shape.t -> Graph_core.Csr.t * layout
(** Realise straight into a CSR snapshot through {!Csr.Builder},
    skipping the adjacency-set graph — same vertices, same edges, same
    ascending neighbour order as [Csr.of_graph (fst (realize shape))],
    at a fraction of the cost and (with [~big:true]) off the OCaml
    heap. The construction path for million-node topologies. *)

val shape_node_of_vertex : layout -> n_vertices:int -> int -> int * int
(** Inverse lookup [(node, copy)] for a graph vertex ([copy] is 0 for
    width-1 nodes). O(log size) by binary search over base offsets. *)
