module Graph = Graph_core.Graph
module Csr = Graph_core.Csr

type layout = { copies : int; base_vertex : int array; width : int array }

let vertex_of layout ~node ~copy =
  if copy < 0 || copy >= layout.copies then invalid_arg "Realize.vertex_of: copy out of range";
  if layout.width.(node) = 1 then layout.base_vertex.(node)
  else layout.base_vertex.(node) + copy

let layout_of shape =
  let k = Shape.k shape in
  let sz = Shape.size shape in
  let base_vertex = Array.make sz 0 in
  let width = Array.make sz 1 in
  let next = ref 0 in
  for node = 0 to sz - 1 do
    let w =
      match Shape.kind shape node with
      | Shape.Root | Shape.Internal | Shape.Unshared_leaf -> k
      | Shape.Shared_leaf | Shape.Added_leaf -> 1
    in
    base_vertex.(node) <- !next;
    width.(node) <- w;
    next := !next + w
  done;
  ({ copies = k; base_vertex; width }, !next)

(* Every realised edge exactly once: parents are always non-leaf (width
   k), so the k parent-copy edges of a node are distinct, and clique
   edges stay within one node's replica block — the enumeration can
   never emit a duplicate. *)
let iter_realized_edges shape layout f =
  let k = layout.copies in
  let sz = Shape.size shape in
  for node = 0 to sz - 1 do
    let p = Shape.parent shape node in
    if p >= 0 then
      for copy = 0 to k - 1 do
        f (vertex_of layout ~node:p ~copy) (vertex_of layout ~node ~copy)
      done;
    (match Shape.kind shape node with
    | Shape.Unshared_leaf ->
        (* rule 4a: the k members form a clique *)
        let base = layout.base_vertex.(node) in
        for a = 0 to k - 1 do
          for b = a + 1 to k - 1 do
            f (base + a) (base + b)
          done
        done
    | Shape.Root | Shape.Internal | Shape.Shared_leaf | Shape.Added_leaf -> ())
  done

let realize shape =
  let layout, nv = layout_of shape in
  let g = Graph.create ~n:nv in
  iter_realized_edges shape layout (Graph.add_edge g);
  (g, layout)

let realize_csr ?big shape =
  let layout, nv = layout_of shape in
  let b = Csr.Builder.create ?big ~n:nv () in
  iter_realized_edges shape layout (Csr.Builder.count_edge b);
  Csr.Builder.ready b;
  iter_realized_edges shape layout (Csr.Builder.add_edge b);
  (Csr.Builder.finish b, layout)

let shape_node_of_vertex layout ~n_vertices v =
  if v < 0 || v >= n_vertices then invalid_arg "Realize.shape_node_of_vertex: out of range";
  (* binary search: greatest node with base_vertex <= v *)
  let lo = ref 0 and hi = ref (Array.length layout.base_vertex - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if layout.base_vertex.(mid) <= v then lo := mid else hi := mid - 1
  done;
  let node = !lo in
  (node, v - layout.base_vertex.(node))
