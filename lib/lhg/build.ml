type t = {
  graph : Graph_core.Graph.t;
  shape : Shape.t;
  layout : Realize.layout;
  k : int;
}

type error =
  | K_too_small of int
  | N_too_small of { n : int; minimum : int }
  | Jd_gap of { n : int; k : int; j : int; capacity : int }

let pp_error fmt = function
  | K_too_small k -> Format.fprintf fmt "k = %d is too small: constructions need k >= 2" k
  | N_too_small { n; minimum } ->
      Format.fprintf fmt "n = %d is too small: the smallest graph for this k has %d nodes" n minimum
  | Jd_gap { n; k; j; capacity } ->
      Format.fprintf fmt
        "the Jenkins-Demers rule cannot build (n=%d, k=%d): %d added leaves needed, capacity %d" n
        k j capacity

let error_to_string e = Format.asprintf "%a" pp_error e

let of_shape shape =
  let graph, layout = Realize.realize shape in
  { graph; shape; layout; k = Shape.k shape }

let check_bounds ~n ~k =
  if k < 2 then Error (K_too_small k)
  else if n < 2 * k then Error (N_too_small { n; minimum = 2 * k })
  else Ok ()

(* Attach [j] added leaves, at most [cap] per host, walking above-leaf
   nodes deepest-first so new leaves stay at frontier depth. *)
let distribute_added shape ~j ~cap =
  if j > 0 && cap <= 0 then invalid_arg "Build.distribute_added: zero per-node capacity";
  let rec place remaining hosts =
    if remaining > 0 then
      match hosts with
      | [] -> invalid_arg "Build.distribute_added: out of capacity (internal error)"
      | host :: rest ->
          let here = min cap remaining in
          for _ = 1 to here do
            Shape.add_added_leaf shape ~parent:host
          done;
          place (remaining - here) rest
  in
  place j (List.rev (Shape.above_leaf_nodes shape))

let shape_ktree ~n ~k =
  match check_bounds ~n ~k with
  | Error e -> Error e
  | Ok () ->
      let alpha, j = Option.get (Existence.decompose_ktree ~n ~k) in
      let shape = Skeleton.make ~k ~alpha in
      distribute_added shape ~j ~cap:((2 * k) - 3);
      Ok shape

let shape_kdiamond ~n ~k =
  match check_bounds ~n ~k with
  | Error e -> Error e
  | Ok () ->
      let alpha, j = Option.get (Existence.decompose_kdiamond ~n ~k) in
      (* α = 2·conversions + unshared-marks: each conversion adds
         2(k−1) vertices, each unshared group k−1. *)
      let conversions = alpha / 2 and unshared = alpha mod 2 in
      let shape = Skeleton.make ~k ~alpha:conversions in
      if unshared = 1 then begin
        (* Deepest shared leaf keeps the frontier balanced. *)
        let leaf =
          List.fold_left
            (fun best l ->
              if Shape.kind shape l = Shape.Shared_leaf
                 && (best < 0 || Shape.depth shape l > Shape.depth shape best)
              then l
              else best)
            (-1) (Shape.leaves shape)
        in
        Shape.mark_unshared shape leaf
      end;
      distribute_added shape ~j ~cap:(k - 2);
      Ok shape

(* Deepest shared leaves first, so unshared groups sit on the frontier. *)
let mark_unshared_leaves shape ~count =
  let shared =
    List.filter (fun l -> Shape.kind shape l = Shape.Shared_leaf) (Shape.leaves shape)
    |> List.map (fun l -> (Shape.depth shape l, l))
    |> List.sort (fun a b -> compare b a)
    |> List.map snd
  in
  if List.length shared < count then
    invalid_arg "Build.mark_unshared_leaves: not enough shared leaves (internal error)";
  List.iteri (fun i l -> if i < count then Shape.mark_unshared shape l) shared

let shape_kdiamond_rich ~n ~k =
  match check_bounds ~n ~k with
  | Error e -> Error e
  | Ok () ->
      let alpha, j = Option.get (Existence.decompose_kdiamond ~n ~k) in
      (* minimise conversions c subject to the unshared count
         U = alpha - 2c fitting in the k + c(k-2) shared positions *)
      let conversions = max 0 (((alpha - k) + k - 1) / k) in
      let unshared = alpha - (2 * conversions) in
      let shape = Skeleton.make ~k ~alpha:conversions in
      mark_unshared_leaves shape ~count:unshared;
      distribute_added shape ~j ~cap:(k - 2);
      Ok shape

let shape_jd ~strict ~n ~k =
  match check_bounds ~n ~k with
  | Error e -> Error e
  | Ok () ->
      let alpha, j = Option.get (Existence.decompose_ktree ~n ~k) in
      let shape = Skeleton.make ~k ~alpha in
      let hosts =
        List.filter (fun nd -> Shape.kind shape nd <> Shape.Root) (Shape.above_leaf_nodes shape)
      in
      let capacity = 2 * min k (List.length hosts) in
      let feasible = j <= capacity && ((not strict) || j mod 2 = 0) in
      if not feasible then Error (Jd_gap { n; k; j; capacity })
      else begin
        let rec place remaining hosts =
          if remaining > 0 then
            match hosts with
            | [] -> invalid_arg "Build.jd: capacity accounting failed (internal error)"
            | host :: rest ->
                let here = min 2 remaining in
                for _ = 1 to here do
                  Shape.add_added_leaf shape ~parent:host
                done;
                place (remaining - here) rest
        in
        place j (List.rev hosts);
        Ok shape
      end

type construction = Ktree | Kdiamond | Kdiamond_rich | Jd of { strict : bool }

let construction_name = function
  | Ktree -> "ktree"
  | Kdiamond -> "kdiamond"
  | Kdiamond_rich -> "kdiamond-rich"
  | Jd { strict = true } -> "jd"
  | Jd { strict = false } -> "jd-lenient"

(* the shape is the construction; graph vs CSR is just realisation *)
let shape_for construction ~n ~k =
  match construction with
  | Ktree -> shape_ktree ~n ~k
  | Kdiamond -> shape_kdiamond ~n ~k
  | Kdiamond_rich -> shape_kdiamond_rich ~n ~k
  | Jd { strict } -> shape_jd ~strict ~n ~k

let build construction ~n ~k = Result.map of_shape (shape_for construction ~n ~k)

let build_csr ?big construction ~n ~k =
  Result.map (fun shape -> fst (Realize.realize_csr ?big shape)) (shape_for construction ~n ~k)

let ktree ~n ~k = build Ktree ~n ~k

let kdiamond ~n ~k = build Kdiamond ~n ~k

let kdiamond_unshared_rich ~n ~k = build Kdiamond_rich ~n ~k

let jd ?(strict = true) ~n ~k () = build (Jd { strict }) ~n ~k

let get_exn name = function
  | Ok t -> t
  | Error e -> invalid_arg (Printf.sprintf "Build.%s: %s" name (error_to_string e))

let build_exn construction ~n ~k =
  get_exn (construction_name construction) (build construction ~n ~k)

let build_csr_exn ?big construction ~n ~k =
  get_exn (construction_name construction) (build_csr ?big construction ~n ~k)

let jd_exn ?strict ~n ~k () = get_exn "jd_exn" (jd ?strict ~n ~k ())

let ktree_exn ~n ~k = get_exn "ktree_exn" (ktree ~n ~k)

let kdiamond_exn ~n ~k = get_exn "kdiamond_exn" (kdiamond ~n ~k)

let kdiamond_unshared_rich_exn ~n ~k =
  get_exn "kdiamond_unshared_rich_exn" (kdiamond_unshared_rich ~n ~k)
