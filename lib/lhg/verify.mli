(** Independent verification of the four LHG properties.

    Everything here works on the raw graph with the max-flow machinery of
    {!Graph_core.Connectivity} — no knowledge of shapes or witnesses — so
    that construction bugs cannot hide behind their own bookkeeping.

    - P1 k-node connectivity, P2 k-link connectivity: flow decisions;
    - P3 link minimality: every edge critical ({!Graph_core.Minimality});
    - P4 logarithmic diameter: exact BFS diameter against
      {!diameter_bound}. *)

type report = {
  n : int;
  k : int;
  node_connected : bool;  (** P1 *)
  link_connected : bool;  (** P2 *)
  link_minimal : bool option;  (** P3; [None] when skipped *)
  diameter : int option;  (** exact; [None] when disconnected *)
  diameter_ok : bool;  (** P4 against {!diameter_bound} *)
  k_regular : bool;  (** P5, informational *)
}

val diameter_bound : n:int -> k:int -> int
(** The P4 threshold: ⌈2·log_{k−1} n⌉ + 6 for k ≥ 3 — a provable bound
    for the pasted-tree constructions (height ≤ log_{k−1}(n/k) + 2,
    worst path ≤ 2·height + 2, slack for added leaves and cliques).
    For k = 2 the bound degenerates to n: no 2-regular graph family has
    logarithmic diameter, matching the paper's implicit k ≥ 3 scope. *)

val verify :
  ?check_minimality:bool -> ?pool:Par.Pool.t -> Graph_core.Graph.t -> k:int -> report
(** Full property check. [check_minimality] defaults to [true]; it is
    the expensive part (one local flow per edge) and can be disabled for
    large sweeps. With [?pool] every property check fans its
    independent probes (per-pair flows, per-edge criticality tests,
    per-source BFS) across the pool's domains — the report is identical
    at any domain count. *)

val is_lhg : ?check_minimality:bool -> ?pool:Par.Pool.t -> Graph_core.Graph.t -> k:int -> bool
(** P1 ∧ P2 ∧ P3 ∧ P4. *)

val quick : ?pool:Par.Pool.t -> Graph_core.Graph.t -> k:int -> bool
(** P1 ∧ P2 ∧ P4, skipping the (quadratic) minimality sweep — the
    membership fast path used as the reconfiguration controller's
    full-verification fallback: is this still a k-connected,
    logarithmic-diameter overlay? *)

val pp_report : Format.formatter -> report -> unit

val check_realization : Build.t -> bool
(** Witness consistency: re-realise the build's shape and compare graphs
    — guards against accidental divergence between witness and graph. *)
